#include "core/compact_snapshot.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "core/memory_accounting.h"
#include "core/serving_walk.h"

namespace sqp {

namespace internal {
std::atomic<bool>& ForceSparseMergeForTest() {
  static std::atomic<bool> force{false};
  return force;
}
}  // namespace internal

namespace {

/// Saturating narrowing for the per-node count headers. Counts beyond
/// 2^32 would need corpora far past the paper's scale; the clamp keeps the
/// layout sound rather than wrapping, at documented precision loss.
uint32_t SaturateU32(uint64_t value) {
  return value > std::numeric_limits<uint32_t>::max()
             ? std::numeric_limits<uint32_t>::max()
             : static_cast<uint32_t>(value);
}

/// Block shift of a node: smallest s with (max_count >> s) <= 65535.
uint8_t BlockShift(uint64_t max_count) {
  uint8_t shift = 0;
  while ((max_count >> shift) > 0xffff) ++shift;
  return shift;
}

/// The kept-entry indices of every node under the truncation policy:
///
///  (a) per-node top-K — `nexts` is sorted by descending count (ties by
///      ascending query), so the base slice is the node's own ranking
///      prefix;
///  (b) aggregate closure — the full model's *served* top-K list at the
///      node's exact context is pinned at every path level that carries
///      the query, so serving any context whose suffix matches the node
///      exactly reproduces the full top-K list verbatim (every pinned
///      candidate keeps all its per-level contributions, i.e. its exact
///      full-precision score);
///  (c) ancestor closure — a query kept in a node is also kept in every
///      ancestor (its counts nest, so it always appears there), so any
///      candidate kept at the deepest path level that lists it carries its
///      exact full-precision score. (A query can still be truncated from a
///      node *deeper* than the ones keeping it — contexts whose walk ends
///      there serve it with the deep contribution understated; (b) exists
///      to make that rare, and BENCH_memory.json tracks the residual
///      disagreement rate.)
///
/// The root keeps nothing: serving never reads the root's nexts (ranking
/// levels are non-root path nodes), so packing them would be dead weight.
///
/// Cost: when any node truncates, pass (b) runs one full Recommend per
/// tree node — O(n * top_k * depth) on top of the model build. That is
/// the price of the preservation property; both passes are skipped
/// entirely when no node exceeds top_k.
std::vector<std::vector<uint32_t>> KeptEntries(const ModelSnapshot& full,
                                               size_t top_k) {
  const std::vector<Pst::Node>& nodes = full.pst()->nodes();
  const size_t n = nodes.size();
  std::vector<std::vector<uint8_t>> flag(n);
  bool any_truncated = false;
  for (size_t id = 1; id < n; ++id) {
    flag[id].assign(nodes[id].nexts.size(), 0);
    const size_t base = std::min(top_k, nodes[id].nexts.size());
    std::fill(flag[id].begin(), flag[id].begin() + base, 1);
    any_truncated |= base < nodes[id].nexts.size();
  }

  // Lazily-built (query -> entry index) maps, shared by passes (b)/(c).
  std::vector<std::unordered_map<QueryId, uint32_t>> index_of(n);
  const auto entry_index = [&](size_t node, QueryId query) -> int64_t {
    std::unordered_map<QueryId, uint32_t>& map = index_of[node];
    if (map.empty() && !nodes[node].nexts.empty()) {
      map.reserve(nodes[node].nexts.size());
      for (uint32_t i = 0; i < nodes[node].nexts.size(); ++i) {
        map.emplace(nodes[node].nexts[i].query, i);
      }
    }
    const auto it = map.find(query);
    return it == map.end() ? -1 : static_cast<int64_t>(it->second);
  };

  // (b) aggregate closure; (c) ancestor closure, as a reverse sweep that
  // sees every descendant before its ancestor (node ids are
  // parent-before-child). Both are no-ops when nothing was truncated.
  if (any_truncated) {
    SnapshotScratch scratch;
    for (size_t id = 1; id < n; ++id) {
      const Recommendation rec =
          full.Recommend(nodes[id].context, top_k, &scratch);
      for (const ScoredQuery& sq : rec.queries) {
        for (int32_t a = static_cast<int32_t>(id); a > 0;
             a = nodes[static_cast<size_t>(a)].parent) {
          const int64_t i = entry_index(static_cast<size_t>(a), sq.query);
          if (i >= 0) {
            flag[static_cast<size_t>(a)][static_cast<size_t>(i)] = 1;
          }
        }
      }
    }
    for (size_t id = n; id-- > 1;) {
      const int32_t parent = nodes[id].parent;
      if (parent <= 0) continue;
      for (uint32_t i = 0; i < flag[id].size(); ++i) {
        if (!flag[id][i]) continue;
        const int64_t j = entry_index(static_cast<size_t>(parent),
                                      nodes[id].nexts[i].query);
        if (j >= 0) {
          flag[static_cast<size_t>(parent)][static_cast<size_t>(j)] = 1;
        }
      }
    }
  }

  std::vector<std::vector<uint32_t>> kept(n);
  for (size_t id = 1; id < n; ++id) {
    for (uint32_t i = 0; i < flag[id].size(); ++i) {
      if (flag[id][i]) kept[id].push_back(i);
    }
  }
  return kept;
}

}  // namespace

void CompactSnapshot::BindViews() {
  next_begin_ = own_next_begin_;
  child_begin_ = own_child_begin_;
  total_count_ = own_total_count_;
  start_count_ = own_start_count_;
  count_shift_ = own_count_shift_;
  mask16_ = own_mask16_;
  mask64_ = own_mask64_;
  next_code_ = own_next_code_;
  narrow_view_ = NarrowPoolsView{narrow_.next_query, narrow_.edge_query,
                                 narrow_.edge_child,
                                 narrow_.root_child_by_query};
  wide_view_ = WidePoolsView{wide_.next_query, wide_.edge_query,
                             wide_.edge_child, wide_.root_child_by_query};
  FinalizeDerived();
}

std::shared_ptr<const CompactSnapshot> CompactSnapshot::FromSnapshot(
    const ModelSnapshot& full, const CompactOptions& options) {
  std::shared_ptr<CompactSnapshot> out(new CompactSnapshot());
  out->options_ = options;
  out->version_ = full.version();
  out->weighting_ = full.options().weighting;
  out->sigmas_ = full.sigmas();
  out->component_escape_.reserve(full.options().components.size());
  for (const VmmOptions& component : full.options().components) {
    out->component_escape_.push_back(component.default_escape);
  }

  const Pst& pst = *full.pst();
  const std::vector<Pst::Node>& nodes = pst.nodes();
  const size_t n = nodes.size();
  const bool narrow_masks = out->component_escape_.size() <= 16;

  // Adaptive id width: 16-bit pools whenever every query id and node id
  // fits (node 0, the root, is never a child, so it doubles as the root
  // index's absent sentinel).
  QueryId max_query = 0;
  for (const Pst::Node& node : nodes) {
    for (const NextQueryCount& nc : node.nexts) {
      max_query = std::max(max_query, nc.query);
    }
    if (!node.context.empty()) {
      max_query = std::max(max_query, node.context.front());
    }
  }
  out->is_narrow_ =
      n <= std::numeric_limits<uint16_t>::max() &&
      max_query < std::numeric_limits<uint16_t>::max();

  out->own_next_begin_.reserve(n + 1);
  out->own_child_begin_.reserve(n + 1);
  out->own_total_count_.reserve(n);
  out->own_start_count_.reserve(n);
  out->own_count_shift_.reserve(n);
  if (narrow_masks) {
    out->own_mask16_.reserve(n);
  } else {
    out->own_mask64_.reserve(n);
  }

  const std::vector<std::vector<uint32_t>> kept =
      KeptEntries(full, options.top_k == 0
                            ? std::numeric_limits<size_t>::max()
                            : options.top_k);

  const auto push_entry = [&](QueryId query, uint16_t code) {
    if (out->is_narrow_) {
      out->narrow_.next_query.push_back(static_cast<uint16_t>(query));
    } else {
      out->wide_.next_query.push_back(query);
    }
    out->own_next_code_.push_back(code);
  };
  const auto push_edge = [&](QueryId query, int32_t child) {
    if (out->is_narrow_) {
      out->narrow_.edge_query.push_back(static_cast<uint16_t>(query));
      out->narrow_.edge_child.push_back(static_cast<uint16_t>(child));
    } else {
      out->wide_.edge_query.push_back(query);
      out->wide_.edge_child.push_back(static_cast<uint32_t>(child));
    }
  };

  for (size_t id = 0; id < n; ++id) {
    const Pst::Node& node = nodes[id];
    out->own_next_begin_.push_back(
        static_cast<uint32_t>(out->own_next_code_.size()));
    out->own_child_begin_.push_back(static_cast<uint32_t>(
        out->is_narrow_ ? out->narrow_.edge_query.size()
                        : out->wide_.edge_query.size()));
    out->own_total_count_.push_back(SaturateU32(node.total_count));
    out->own_start_count_.push_back(SaturateU32(node.start_count));
    const Pst::ViewMask mask = pst.mask_of(static_cast<int32_t>(id));
    if (narrow_masks) {
      out->own_mask16_.push_back(static_cast<uint16_t>(mask));
    } else {
      out->own_mask64_.push_back(mask);
    }

    // Ancestor-closed top-K truncation (see KeptEntries) over the
    // descending-sorted count list. Block-scaled quantization: whenever the
    // node's largest count fits 16 bits the shift is 0 and every code IS
    // the exact count — dequantized serving arithmetic is then
    // bit-identical to the full tree. Shifted nodes keep the ranking
    // (>> is monotone) and clamp sub-resolution counts to one code step so
    // observed continuations never quantize to probability zero.
    const uint64_t max_count = node.nexts.empty() ? 0 : node.nexts[0].count;
    const uint8_t shift = BlockShift(max_count);
    out->own_count_shift_.push_back(shift);
    for (uint32_t i : kept[id]) {
      const uint64_t code = node.nexts[i].count >> shift;
      push_entry(node.nexts[i].query,
                 static_cast<uint16_t>(code == 0 ? 1 : code));
    }

    for (const Pst::Edge& edge : node.children) {
      push_edge(edge.query, edge.child);
    }
  }
  out->own_next_begin_.push_back(
      static_cast<uint32_t>(out->own_next_code_.size()));
  out->own_child_begin_.push_back(static_cast<uint32_t>(
      out->is_narrow_ ? out->narrow_.edge_query.size()
                      : out->wide_.edge_query.size()));

  // Dense root fan-out, as in the full tree (absent = node 0).
  const auto build_root_index = [&](auto& pools) {
    const uint32_t root_edges = out->own_child_begin_[1];
    if (root_edges == 0) return;
    const QueryId max_root_query = pools.edge_query[root_edges - 1];
    pools.root_child_by_query.assign(static_cast<size_t>(max_root_query) + 1,
                                     0);
    for (uint32_t e = 0; e < root_edges; ++e) {
      pools.root_child_by_query[pools.edge_query[e]] = pools.edge_child[e];
    }
  };
  if (out->is_narrow_) {
    build_root_index(out->narrow_);
  } else {
    build_root_index(out->wide_);
  }

  const auto shrink = [](auto& pools) {
    pools.next_query.shrink_to_fit();
    pools.edge_query.shrink_to_fit();
    pools.edge_child.shrink_to_fit();
  };
  shrink(out->narrow_);
  shrink(out->wide_);
  out->own_next_code_.shrink_to_fit();
  out->BindViews();
  return out;
}

void CompactServingBase::FinalizeDerived() {
  // Bind the runtime-free walk layer's view of this model. The spans stay
  // the owning truth (vectors or mapped blob); the ModelRef is raw
  // pointers into exactly that storage.
  serving::ModelRef m;
  m.next_begin = next_begin_.data();
  m.child_begin = child_begin_.data();
  m.total_count = total_count_.data();
  m.start_count = start_count_.data();
  m.count_shift = count_shift_.data();
  m.mask16 = mask16_.empty() ? nullptr : mask16_.data();
  m.mask64 = mask64_.empty() ? nullptr : mask64_.data();
  m.next_code = next_code_.data();
  m.num_nodes = total_count_.size();
  m.num_entries = next_code_.size();
  m.num_edges = is_narrow_ ? narrow_view_.edge_query.size()
                           : wide_view_.edge_query.size();
  m.narrow_ids = is_narrow_;
  m.narrow = serving::PoolsRef<uint16_t, uint16_t>{
      narrow_view_.next_query.data(), narrow_view_.edge_query.data(),
      narrow_view_.edge_child.data(), narrow_view_.root_child_by_query.data(),
      narrow_view_.root_child_by_query.size()};
  m.wide = serving::PoolsRef<uint32_t, uint32_t>{
      wide_view_.next_query.data(), wide_view_.edge_query.data(),
      wide_view_.edge_child.data(), wide_view_.root_child_by_query.data(),
      wide_view_.root_child_by_query.size()};
  m.weighting = weighting_;
  m.sigmas = sigmas_.data();
  m.component_escape = component_escape_.data();
  m.num_components = component_escape_.size();

  // Derived block: escape power tables (owned here, referenced by the
  // ModelRef), dense-accumulator bound, scratch sizing. Safe to run before
  // a blob's structural validation — the parse layer has already pinned
  // every section's element count to the META totals, and the depth sweep
  // is defensive against non-monotone offsets.
  escape_pow_.assign(m.num_components * (serving::kEscapePowCap + 1), 1.0);
  std::vector<uint32_t> depth_scratch(m.num_nodes, 0);
  serving::FinalizeModelRef(&m, escape_pow_.data(),
                            depth_scratch.empty() ? nullptr
                                                  : depth_scratch.data());
  model_ = m;
}

size_t CompactServingBase::MatchedDepth(
    std::span<const QueryId> context) const {
  const size_t path_cap = std::min(
      context.size(), std::max<size_t>(model_.sizing.path_depth, 64));
  std::vector<int32_t> path(path_cap);
  return serving::MatchPath(model_, context.data(), context.size(),
                            path.data(), path.size());
}

ScratchSizing CompactServingBase::ScratchHint() const {
  return model_.sizing;
}

Recommendation CompactServingBase::Recommend(std::span<const QueryId> context,
                                             size_t top_n,
                                             SnapshotScratch* scratch) const {
  Recommendation rec;
  if (context.empty()) return rec;
  const serving::ModelRef& m = model_;

  // Per-request capacity top-up off the bind-time sizing — all no-ops in
  // steady state once Prepare() warmed the scratch. The path capacity
  // floor covers adversarial mapped blobs whose depth sweep under-reports
  // (cyclic CSR graphs); every well-formed model fits sizing.path_depth.
  const size_t path_cap = std::min(
      context.size(), std::max<size_t>(m.sizing.path_depth, 64));
  if (scratch->path.size() < path_cap) scratch->path.resize(path_cap);
  if (scratch->level_weight.size() < path_cap) {
    scratch->level_weight.resize(path_cap);
  }
  const size_t k = m.num_components;
  if (scratch->matched.size() < k) scratch->matched.resize(k);
  if (scratch->weights.size() < k) scratch->weights.resize(k);
  if (scratch->topn_query.size() < top_n) scratch->topn_query.resize(top_n);
  if (scratch->topn_score.size() < top_n) scratch->topn_score.resize(top_n);

  serving::WalkScratch ws;
  ws.path = scratch->path.data();
  ws.path_capacity = path_cap;
  ws.matched = scratch->matched.data();
  ws.weights = scratch->weights.data();
  ws.level_weight = scratch->level_weight.data();

  const bool use_dense =
      m.dense_merge &&
      !internal::ForceSparseMergeForTest().load(std::memory_order_relaxed);
  serving::DenseAccumulator acc;
  if (use_dense) {
    acc = scratch->acc.BeginGeneration(m.sizing.dense_queries);
    ws.acc = &acc;
  } else {
    // The sparse sort-merge path can surface every packed entry at once;
    // num_entries is a true bound (path nodes are distinct in a tree).
    if (scratch->walk_raw.size() < m.num_entries) {
      scratch->walk_raw.resize(m.num_entries);
    }
    ws.raw = scratch->walk_raw.data();
    ws.raw_capacity = scratch->walk_raw.size();
  }

  const serving::WalkResult result = serving::RecommendTopN(
      m, context.data(), context.size(), top_n, kernels::ActiveKernels(),
      use_dense, &ws, scratch->topn_query.data(), scratch->topn_score.data());
  if (!result.covered) return rec;
  rec.covered = true;
  rec.matched_length = result.matched_length;
  rec.queries.resize(result.count);
  for (size_t i = 0; i < result.count; ++i) {
    rec.queries[i] = ScoredQuery{static_cast<QueryId>(scratch->topn_query[i]),
                                 scratch->topn_score[i]};
  }
  return rec;
}

bool CompactServingBase::Covers(std::span<const QueryId> context) const {
  return serving::Covers(model_, context.data(), context.size());
}

uint64_t CompactServingBase::ServingBytes() const {
  return next_begin_.size_bytes() + child_begin_.size_bytes() +
         total_count_.size_bytes() + start_count_.size_bytes() +
         count_shift_.size_bytes() + mask16_.size_bytes() +
         mask64_.size_bytes() + next_code_.size_bytes() +
         narrow_view_.flat_bytes() + wide_view_.flat_bytes() +
         FlatBytes(sigmas_) + FlatBytes(component_escape_);
}

ModelStats CompactSnapshot::Stats() const {
  ModelStats stats;
  stats.name = "MVMM (compact)";
  stats.num_states = num_nodes();
  stats.num_entries = num_entries();
  stats.memory_bytes = ServingBytes();
  return stats;
}

}  // namespace sqp
