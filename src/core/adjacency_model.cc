#include "core/adjacency_model.h"

#include <algorithm>

#include "core/memory_accounting.h"

namespace sqp {

Status AdjacencyModel::Train(const TrainingData& data) {
  SQP_RETURN_IF_ERROR(internal::ValidateTrainingData(data));
  table_.clear();
  vocabulary_size_ = data.vocabulary_size;

  std::unordered_map<QueryId, std::unordered_map<QueryId, uint64_t>> counts;
  for (const AggregatedSession& s : *data.sessions) {
    for (size_t i = 0; i + 1 < s.queries.size(); ++i) {
      counts[s.queries[i]][s.queries[i + 1]] += s.frequency;
    }
  }
  table_.reserve(counts.size());
  for (auto& [query, next_map] : counts) {
    ContextEntry entry;
    entry.context = {query};
    entry.nexts.reserve(next_map.size());
    for (const auto& [next, count] : next_map) {
      entry.nexts.push_back(NextQueryCount{next, count});
      entry.total_count += count;
    }
    std::sort(entry.nexts.begin(), entry.nexts.end(),
              [](const NextQueryCount& a, const NextQueryCount& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.query < b.query;
              });
    table_.emplace(query, std::move(entry));
  }
  return Status::OK();
}

const ContextEntry* AdjacencyModel::Find(
    std::span<const QueryId> context) const {
  if (context.empty()) return nullptr;
  auto it = table_.find(context.back());
  if (it == table_.end()) return nullptr;
  return &it->second;
}

Recommendation AdjacencyModel::Recommend(std::span<const QueryId> context,
                                         size_t top_n) const {
  Recommendation rec;
  const ContextEntry* entry = Find(context);
  if (entry == nullptr) return rec;
  rec.covered = true;
  rec.matched_length = 1;
  internal::FillTopN(entry->nexts, entry->total_count, top_n, &rec);
  return rec;
}

bool AdjacencyModel::Covers(std::span<const QueryId> context) const {
  return Find(context) != nullptr;
}

double AdjacencyModel::ConditionalProb(std::span<const QueryId> context,
                                       QueryId next) const {
  const ContextEntry* entry = Find(context);
  if (entry == nullptr) {
    return 1.0 / static_cast<double>(vocabulary_size_ == 0 ? 1
                                                           : vocabulary_size_);
  }
  return internal::SmoothedProb(entry->nexts, entry->total_count,
                                vocabulary_size_, next);
}

ModelStats AdjacencyModel::Stats() const {
  ModelStats stats;
  stats.name = std::string(Name());
  stats.num_states = table_.size();
  for (const auto& [query, entry] : table_) {
    stats.num_entries += entry.nexts.size();
  }
  stats.memory_bytes = ContextTableBytes(stats.num_states, stats.num_entries,
                                         /*num_key_ids=*/stats.num_states);
  return stats;
}

}  // namespace sqp
