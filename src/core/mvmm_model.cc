#include "core/mvmm_model.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <unordered_set>

#include "util/edit_distance.h"
#include "util/hash.h"
#include "util/math_util.h"

namespace sqp {

std::vector<VmmOptions> MvmmOptions::DefaultComponents(size_t max_depth) {
  // Paper Section IV-C.2 trains "K D-bounded VMM models, {P_D, D=1..K}",
  // each "with a range of epsilon values"; Section V-D uses 11 components.
  // The default crosses D = 1..deepest with epsilon in {0.0, 0.05} and adds
  // one (deepest, 0.1) component: 11 components at the default depth 5,
  // covering both the depth and the epsilon axes of the model family.
  const size_t deepest = max_depth == 0 ? 5 : max_depth;
  std::vector<VmmOptions> components;
  components.reserve(2 * deepest + 1);
  for (size_t depth = 1; depth <= deepest; ++depth) {
    for (double epsilon : {0.0, 0.05}) {
      VmmOptions vmm;
      vmm.epsilon = epsilon;
      vmm.max_depth = depth;
      components.push_back(vmm);
    }
  }
  VmmOptions last;
  last.epsilon = 0.1;
  last.max_depth = deepest;
  components.push_back(last);
  return components;
}

MvmmModel::MvmmModel(MvmmOptions options) : options_(std::move(options)) {
  if (options_.components.empty()) {
    options_.components =
        MvmmOptions::DefaultComponents(options_.default_max_depth);
  }
}

Status MvmmModel::Train(const TrainingData& data) {
  SQP_RETURN_IF_ERROR(internal::ValidateTrainingData(data));
  if (options_.components.empty()) {
    return Status::InvalidArgument("MVMM needs at least one component");
  }
  vocabulary_size_ = data.vocabulary_size;
  components_.clear();

  // One shared counting pass for all components. Depth must accommodate the
  // deepest component; any unbounded component forces an unbounded index.
  size_t shared_depth = 0;
  bool any_unbounded = false;
  for (const VmmOptions& c : options_.components) {
    if (c.max_depth == 0) any_unbounded = true;
    shared_depth = std::max(shared_depth, c.max_depth);
  }
  ContextIndex shared_index;
  shared_index.Build(*data.sessions, ContextIndex::Mode::kSubstring,
                     any_unbounded ? 0 : shared_depth);

  TrainingData component_data = data;
  component_data.substring_index = &shared_index;
  for (const VmmOptions& c : options_.components) {
    components_.push_back(std::make_unique<VmmModel>(c));
  }
  if (options_.training_threads <= 1) {
    for (const auto& vmm : components_) {
      SQP_RETURN_IF_ERROR(vmm->Train(component_data));
    }
  } else {
    // Components are independent given the shared (read-only) index; shard
    // them across workers (paper Section V-F.1).
    std::vector<Status> statuses(components_.size());
    std::vector<std::thread> workers;
    const size_t num_workers =
        std::min(options_.training_threads, components_.size());
    std::atomic<size_t> next{0};
    for (size_t w = 0; w < num_workers; ++w) {
      workers.emplace_back([&] {
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= components_.size()) return;
          statuses[i] = components_[i]->Train(component_data);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    for (const Status& status : statuses) {
      SQP_RETURN_IF_ERROR(status);
    }
  }

  sigmas_.assign(components_.size(), options_.initial_sigma);
  if (options_.weighting == MixtureWeighting::kGaussianEditDistance) {
    FitSigmas(*data.sessions);
  }
  trained_ = true;
  return Status::OK();
}

std::vector<double> MvmmModel::RawWeights(
    std::span<const QueryId> context,
    const std::vector<VmmMatch>& matches) const {
  std::vector<double> weights(components_.size(), 0.0);
  switch (options_.weighting) {
    case MixtureWeighting::kGaussianEditDistance: {
      for (size_t c = 0; c < components_.size(); ++c) {
        const double d = static_cast<double>(
            EditDistance(context, matches[c].state->context));
        weights[c] = GaussianPdf(d, sigmas_[c]);
      }
      // With a tightly fitted sigma the Gaussian can underflow for every
      // component (all matches far from the context); fall back to
      // weighting by match depth so the mixture stays well defined.
      double total = 0.0;
      for (double w : weights) total += w;
      if (total <= 1e-280) {
        for (size_t c = 0; c < components_.size(); ++c) {
          weights[c] = 1.0 + static_cast<double>(matches[c].matched_length);
        }
      }
      break;
    }
    case MixtureWeighting::kUniform:
      weights.assign(components_.size(), 1.0);
      break;
    case MixtureWeighting::kLongestMatch: {
      size_t best = 0;
      for (const VmmMatch& match : matches) {
        best = std::max(best, match.matched_length);
      }
      for (size_t c = 0; c < components_.size(); ++c) {
        weights[c] = matches[c].matched_length == best ? 1.0 : 0.0;
      }
      break;
    }
  }
  return weights;
}

void MvmmModel::FitSigmas(const std::vector<AggregatedSession>& sessions) {
  fit_report_ = MvmmFitReport{};
  // Pseudo-test sample: the most frequent multi-query sessions, with
  // P(X_T) proportional to their aggregated frequency (Eq. 8/9).
  std::vector<const AggregatedSession*> pool;
  for (const AggregatedSession& s : sessions) {
    if (s.queries.size() >= 2) pool.push_back(&s);
  }
  std::sort(pool.begin(), pool.end(),
            [](const AggregatedSession* a, const AggregatedSession* b) {
              if (a->frequency != b->frequency) {
                return a->frequency > b->frequency;
              }
              return a->queries < b->queries;
            });
  if (pool.size() > options_.weight_sample_size) {
    pool.resize(options_.weight_sample_size);
  }
  if (pool.empty()) return;

  const size_t k = components_.size();
  std::vector<WeightSample> samples;
  samples.reserve(pool.size());
  double weight_total = 0.0;
  for (const AggregatedSession* s : pool) {
    WeightSample sample;
    sample.weight = static_cast<double>(s->frequency);
    weight_total += sample.weight;
    sample.edit_distance.resize(k);
    sample.sequence_prob.resize(k);
    const std::span<const QueryId> full_context(
        s->queries.data(), s->queries.size() - 1);
    for (size_t c = 0; c < k; ++c) {
      const VmmMatch match = components_[c]->Match(full_context);
      sample.edit_distance[c] = static_cast<double>(
          EditDistance(full_context, match.state->context));
      sample.sequence_prob[c] = components_[c]->SequenceProb(s->queries);
    }
    samples.push_back(std::move(sample));
  }
  for (WeightSample& s : samples) s.weight /= weight_total;

  // Maximize f(sigma) = sum_X P(X) log sum_D g(d_D; sigma_D) P_D(X).
  // Damped Newton with a numerically differenced Hessian of the analytic
  // gradient; gradient-ascent fallback keeps every accepted step an
  // improvement.
  double f = Objective(samples, sigmas_);
  fit_report_.initial_objective = f;
  const double kFdStep = 1e-4;
  for (size_t iter = 0; iter < options_.max_newton_iterations; ++iter) {
    const std::vector<double> grad = Gradient(samples, sigmas_);
    double grad_norm = 0.0;
    for (double g : grad) grad_norm += g * g;
    grad_norm = std::sqrt(grad_norm);
    if (grad_norm < 1e-9) break;

    // Hessian via central differences of the gradient.
    std::vector<double> hessian(k * k, 0.0);
    for (size_t j = 0; j < k; ++j) {
      std::vector<double> plus = sigmas_;
      std::vector<double> minus = sigmas_;
      plus[j] += kFdStep;
      minus[j] = std::max(options_.min_sigma, minus[j] - kFdStep);
      const double denom = plus[j] - minus[j];
      const std::vector<double> gp = Gradient(samples, plus);
      const std::vector<double> gm = Gradient(samples, minus);
      for (size_t i = 0; i < k; ++i) {
        hessian[i * k + j] = (gp[i] - gm[i]) / denom;
      }
    }

    std::vector<double> step;
    bool have_newton =
        SolveLinearSystem(hessian, grad, k, &step);  // H * step = grad
    // At a maximum H is negative definite, so sigma_new = sigma - step
    // (Eq. 10). Reject the Newton direction if it is not an ascent move.
    bool accepted = false;
    if (have_newton) {
      double damping = 1.0;
      for (int attempt = 0; attempt < 8 && !accepted; ++attempt) {
        std::vector<double> trial = sigmas_;
        for (size_t i = 0; i < k; ++i) {
          trial[i] = std::max(options_.min_sigma,
                              trial[i] - damping * step[i]);
        }
        const double ft = Objective(samples, trial);
        if (ft > f) {
          sigmas_ = std::move(trial);
          f = ft;
          accepted = true;
          fit_report_.used_newton = true;
        }
        damping *= 0.5;
      }
    }
    if (!accepted) {
      // Backtracking gradient ascent.
      double lr = 0.5;
      for (int attempt = 0; attempt < 12 && !accepted; ++attempt) {
        std::vector<double> trial = sigmas_;
        for (size_t i = 0; i < k; ++i) {
          trial[i] = std::max(options_.min_sigma, trial[i] + lr * grad[i]);
        }
        const double ft = Objective(samples, trial);
        if (ft > f) {
          sigmas_ = std::move(trial);
          f = ft;
          accepted = true;
        }
        lr *= 0.5;
      }
    }
    ++fit_report_.iterations;
    if (!accepted) break;  // converged (no improving step)
  }
  fit_report_.final_objective = f;
}

double MvmmModel::Objective(const std::vector<WeightSample>& samples,
                            const std::vector<double>& sigmas) const {
  double f = 0.0;
  for (const WeightSample& s : samples) {
    double mix = 0.0;
    for (size_t c = 0; c < sigmas.size(); ++c) {
      mix += GaussianPdf(s.edit_distance[c], sigmas[c]) * s.sequence_prob[c];
    }
    if (mix <= 0.0) mix = 1e-300;
    f += s.weight * std::log(mix);
  }
  return f;
}

std::vector<double> MvmmModel::Gradient(
    const std::vector<WeightSample>& samples,
    const std::vector<double>& sigmas) const {
  std::vector<double> grad(sigmas.size(), 0.0);
  for (const WeightSample& s : samples) {
    double mix = 0.0;
    std::vector<double> g(sigmas.size());
    for (size_t c = 0; c < sigmas.size(); ++c) {
      g[c] = GaussianPdf(s.edit_distance[c], sigmas[c]);
      mix += g[c] * s.sequence_prob[c];
    }
    if (mix <= 0.0) continue;
    for (size_t c = 0; c < sigmas.size(); ++c) {
      const double d = s.edit_distance[c];
      const double sigma = sigmas[c];
      // d/dsigma of the Gaussian density.
      const double dg = g[c] * (d * d / (sigma * sigma * sigma) - 1.0 / sigma);
      grad[c] += s.weight * dg * s.sequence_prob[c] / mix;
    }
  }
  return grad;
}

std::vector<double> MvmmModel::MixtureWeights(
    std::span<const QueryId> context) const {
  SQP_CHECK(trained_);
  std::vector<VmmMatch> matches(components_.size());
  for (size_t c = 0; c < components_.size(); ++c) {
    matches[c] = components_[c]->Match(context);
  }
  std::vector<double> weights = RawWeights(context, matches);
  NormalizeInPlace(&weights);
  return weights;
}

Recommendation MvmmModel::Recommend(std::span<const QueryId> context,
                                    size_t top_n) const {
  Recommendation rec;
  if (!trained_ || context.empty()) return rec;

  std::vector<VmmMatch> matches(components_.size());
  size_t best_matched = 0;
  for (size_t c = 0; c < components_.size(); ++c) {
    matches[c] = components_[c]->Match(context);
    best_matched = std::max(best_matched, matches[c].matched_length);
  }
  if (best_matched == 0) return rec;  // uncovered, like its components
  std::vector<double> weights = RawWeights(context, matches);
  NormalizeInPlace(&weights);

  // Combine escape-weighted generative scores across components (paper
  // Section IV-C.3: predicted queries of all components are re-ranked
  // w.r.t. generative probabilities and model weights). Each component
  // also contributes its matched state's suffix ancestors at
  // escape-discounted weight (Eq. 5 applied to ranking): deep states often
  // carry very few continuations, and the recursion fills the list with
  // shallower-context candidates without disturbing the deep ranking.
  std::unordered_map<QueryId, double> scores;
  for (size_t c = 0; c < components_.size(); ++c) {
    if (weights[c] <= 0.0 || matches[c].matched_length == 0) continue;
    const Pst& pst = components_[c]->pst();
    const Pst::Node* node = matches[c].state;
    double level_weight = weights[c] * matches[c].escape_weight;
    while (node != nullptr && !node->context.empty()) {
      if (node->total_count > 0) {
        const double scale =
            level_weight / static_cast<double>(node->total_count);
        for (const NextQueryCount& nc : node->nexts) {
          scores[nc.query] += scale * static_cast<double>(nc.count);
        }
      }
      level_weight *= components_[c]->options().default_escape;
      node = node->parent >= 0
                 ? &pst.nodes()[static_cast<size_t>(node->parent)]
                 : nullptr;
    }
  }
  if (scores.empty()) return rec;

  rec.covered = true;
  rec.matched_length = best_matched;
  std::vector<ScoredQuery> ranked;
  ranked.reserve(scores.size());
  for (const auto& [query, score] : scores) {
    ranked.push_back(ScoredQuery{query, score});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ScoredQuery& a, const ScoredQuery& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.query < b.query;
            });
  if (ranked.size() > top_n) ranked.resize(top_n);
  rec.queries = std::move(ranked);
  return rec;
}

bool MvmmModel::Covers(std::span<const QueryId> context) const {
  if (!trained_) return false;
  for (const auto& component : components_) {
    if (component->Covers(context)) return true;
  }
  return false;
}

double MvmmModel::ConditionalProb(std::span<const QueryId> context,
                                  QueryId next) const {
  if (!trained_) return 0.0;
  const std::vector<double> weights = MixtureWeights(context);
  double p = 0.0;
  for (size_t c = 0; c < components_.size(); ++c) {
    p += weights[c] * components_[c]->ConditionalProb(context, next);
  }
  return p;
}

ModelStats MvmmModel::Stats() const {
  ModelStats stats;
  stats.name = std::string(Name());
  // Merged-PST accounting (paper Section V-F.2): structurally identical
  // nodes across components are stored once; each merged node carries a
  // per-component membership tag (4 bits suffice for 11 components; we
  // charge 2 bytes).
  std::unordered_set<std::vector<QueryId>, IdSequenceHash> merged;
  for (const auto& component : components_) {
    for (const Pst::Node& node : component->pst().nodes()) {
      if (merged.insert(node.context).second) {
        stats.memory_bytes += sizeof(Pst::Node) +
                              node.context.size() * sizeof(QueryId) +
                              node.nexts.size() * sizeof(NextQueryCount) +
                              node.children.size() *
                                  (sizeof(QueryId) + sizeof(int32_t) + 16);
        stats.num_entries += node.nexts.size();
      }
      stats.memory_bytes += 2;  // membership tag per (node, component)
    }
  }
  stats.num_states = merged.size();
  return stats;
}

}  // namespace sqp
