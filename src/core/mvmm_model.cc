#include "core/mvmm_model.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <unordered_set>

#include "core/memory_accounting.h"
#include "util/hash.h"
#include "util/math_util.h"

namespace sqp {

using internal::ThreadScratch;

MvmmModel::MvmmModel(MvmmOptions options) : options_(std::move(options)) {
  if (options_.components.empty()) {
    options_.components =
        MvmmOptions::DefaultComponents(options_.default_max_depth);
  }
}

Status MvmmModel::Train(const TrainingData& data) {
  SQP_RETURN_IF_ERROR(internal::ValidateTrainingData(data));
  if (options_.components.empty()) {
    return Status::InvalidArgument("MVMM needs at least one component");
  }
  vocabulary_size_ = data.vocabulary_size;
  components_.clear();
  snapshot_.reset();

  for (const VmmOptions& c : options_.components) {
    components_.push_back(std::make_unique<VmmModel>(c));
  }

  if (components_.size() <= Pst::kMaxViews) {
    // The shared-tree path: all trained state is built off to the side as
    // an immutable snapshot (one counting pass, one maximal multi-view
    // tree, one sigma fit) and the model serves by delegating to it. The
    // component models adopt views of the snapshot's tree so callers can
    // still inspect per-component structure.
    Result<std::shared_ptr<const ModelSnapshot>> built =
        ModelSnapshot::Build(data, options_, /*version=*/0);
    if (!built.ok()) return built.status();
    snapshot_ = std::move(built.value());
    for (size_t c = 0; c < components_.size(); ++c) {
      SQP_RETURN_IF_ERROR(components_[c]->TrainFromSharedPst(
          snapshot_->pst(), c, data.vocabulary_size));
    }
    sigmas_ = snapshot_->sigmas();
    fit_report_ = snapshot_->fit_report();
    trained_ = true;
    return Status::OK();
  }

  // Defensive fallback beyond the mask width: standalone component
  // training off one shared counting pass, sharded across workers when
  // requested (this is the one remaining path with real per-component
  // training cost; paper Section V-F.1).
  size_t shared_depth = 0;
  bool any_unbounded = false;
  for (const VmmOptions& c : options_.components) {
    if (c.max_depth == 0) any_unbounded = true;
    shared_depth = std::max(shared_depth, c.max_depth);
  }
  const size_t need_depth = any_unbounded ? 0 : shared_depth;
  const ContextIndex* index = data.substring_index;
  const bool compatible =
      index != nullptr && index->CoversSubstringDepth(need_depth);
  ContextIndex local;
  if (!compatible) {
    local.Build(*data.sessions, ContextIndex::Mode::kSubstring, need_depth,
                options_.training_threads);
    index = &local;
  }
  TrainingData component_data = data;
  component_data.substring_index = index;
  if (options_.training_threads <= 1) {
    for (const auto& vmm : components_) {
      SQP_RETURN_IF_ERROR(vmm->Train(component_data));
    }
  } else {
    std::vector<Status> statuses(components_.size());
    std::vector<std::thread> workers;
    const size_t num_workers =
        std::min(options_.training_threads, components_.size());
    std::atomic<size_t> next{0};
    for (size_t w = 0; w < num_workers; ++w) {
      workers.emplace_back([&] {
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= components_.size()) return;
          statuses[i] = components_[i]->Train(component_data);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    for (const Status& status : statuses) {
      SQP_RETURN_IF_ERROR(status);
    }
  }

  sigmas_.assign(components_.size(), options_.initial_sigma);
  if (options_.weighting == MixtureWeighting::kGaussianEditDistance) {
    FitSigmas(*data.sessions);
  }
  trained_ = true;
  return Status::OK();
}

std::vector<double> MvmmModel::RawWeights(
    size_t context_len, const std::vector<size_t>& matched) const {
  std::vector<double> weights;
  internal::ComputeRawWeights(options_.weighting, sigmas_, context_len,
                              matched, &weights);
  return weights;
}

void MvmmModel::BuildWeightSample(const AggregatedSession& session,
                                  internal::WeightSample* sample) const {
  const size_t k = components_.size();
  const std::vector<QueryId>& q = session.queries;
  sample->edit_distance.resize(k);
  sample->sequence_prob.assign(k, 1.0);

  const std::span<const QueryId> full(q.data(), q.size() - 1);
  for (size_t c = 0; c < k; ++c) {
    const VmmMatch match = components_[c]->Match(full);
    sample->edit_distance[c] =
        static_cast<double>(full.size() - match.matched_length);
    sample->sequence_prob[c] = components_[c]->SequenceProb(q);
  }
}

void MvmmModel::FitSigmas(const std::vector<AggregatedSession>& sessions) {
  fit_report_ = MvmmFitReport{};
  const std::vector<const AggregatedSession*> pool =
      internal::SelectWeightPool(sessions, options_.weight_sample_size);
  if (pool.empty()) return;

  std::vector<internal::WeightSample> samples(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    samples[i].weight = static_cast<double>(pool[i]->frequency);
  }
  // Per-sample evaluation is independent and writes only its own slot, so
  // sharding it across workers leaves the result bit-identical.
  if (options_.training_threads > 1 && samples.size() > 1) {
    std::vector<std::thread> workers;
    const size_t num_workers =
        std::min(options_.training_threads, samples.size());
    std::atomic<size_t> next{0};
    for (size_t w = 0; w < num_workers; ++w) {
      workers.emplace_back([&] {
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= samples.size()) return;
          BuildWeightSample(*pool[i], &samples[i]);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  } else {
    for (size_t i = 0; i < samples.size(); ++i) {
      BuildWeightSample(*pool[i], &samples[i]);
    }
  }
  fit_report_ = internal::FitSigmasFromSamples(&samples, options_, &sigmas_);
}

std::vector<double> MvmmModel::MixtureWeights(
    std::span<const QueryId> context) const {
  SQP_CHECK(trained_);
  if (snapshot_) {
    return snapshot_->MixtureWeights(context, &ThreadScratch());
  }
  std::vector<size_t> matched(components_.size(), 0);
  for (size_t c = 0; c < components_.size(); ++c) {
    matched[c] = components_[c]->Match(context).matched_length;
  }
  std::vector<double> weights = RawWeights(context.size(), matched);
  NormalizeInPlace(&weights);
  return weights;
}

Recommendation MvmmModel::Recommend(std::span<const QueryId> context,
                                    size_t top_n) const {
  Recommendation rec;
  if (!trained_ || context.empty()) return rec;
  if (snapshot_) {
    return snapshot_->Recommend(context, top_n, &ThreadScratch());
  }

  // Standalone fallback: match every component against its own tree.
  std::vector<size_t> matched(components_.size(), 0);
  std::vector<VmmMatch> matches(components_.size());
  size_t depth = 0;
  for (size_t c = 0; c < components_.size(); ++c) {
    matches[c] = components_[c]->Match(context);
    matched[c] = matches[c].matched_length;
    depth = std::max(depth, matched[c]);
  }
  if (depth == 0) return rec;  // uncovered, like its components
  std::vector<double> weights = RawWeights(context.size(), matched);
  NormalizeInPlace(&weights);

  // Combine escape-weighted generative scores across components, each
  // contributing its matched state plus that state's suffix ancestors at
  // escape-discounted weight (see ModelSnapshot::Recommend for the shared
  // single-tree variant of this ranking).
  std::vector<ScoredQuery> raw;
  for (size_t c = 0; c < components_.size(); ++c) {
    if (weights[c] <= 0.0 || matched[c] == 0) continue;
    const Pst& pst = components_[c]->pst();
    const VmmMatch& match = matches[c];
    const Pst::Node* node = match.state;
    double lw = weights[c] * match.escape_weight;
    while (node != nullptr && !node->context.empty()) {
      if (node->total_count > 0) {
        const double scale =
            lw / static_cast<double>(node->total_count);
        for (const NextQueryCount& nc : node->nexts) {
          raw.push_back(
              ScoredQuery{nc.query, scale * static_cast<double>(nc.count)});
        }
      }
      lw *= components_[c]->options().default_escape;
      node = node->parent >= 0
                 ? &pst.nodes()[static_cast<size_t>(node->parent)]
                 : nullptr;
    }
  }
  if (raw.empty()) return rec;

  rec.covered = true;
  rec.matched_length = depth;
  internal::MergeAndRank(&raw, top_n, &rec);
  return rec;
}

bool MvmmModel::Covers(std::span<const QueryId> context) const {
  if (!trained_) return false;
  if (snapshot_) return snapshot_->Covers(context);
  for (const auto& component : components_) {
    if (component->Covers(context)) return true;
  }
  return false;
}

double MvmmModel::ConditionalProb(std::span<const QueryId> context,
                                  QueryId next) const {
  if (!trained_) return 0.0;
  if (snapshot_) {
    return snapshot_->ConditionalProb(context, next, &ThreadScratch());
  }
  const std::vector<double> weights = MixtureWeights(context);
  double p = 0.0;
  for (size_t c = 0; c < components_.size(); ++c) {
    p += weights[c] * components_[c]->ConditionalProb(context, next);
  }
  return p;
}

ModelStats MvmmModel::Stats() const {
  if (snapshot_) return snapshot_->Stats();
  ModelStats stats;
  stats.name = std::string(Name());
  // Fallback components own their trees; estimate the merged layout by
  // deduplicating structurally identical nodes.
  std::unordered_set<std::vector<QueryId>, IdSequenceHash> merged;
  for (const auto& component : components_) {
    for (const Pst::Node& node : component->pst().nodes()) {
      if (merged.insert(node.context).second) {
        stats.memory_bytes +=
            PstNodeBytes(node.context.size(), node.nexts.size(),
                         node.children.size(), /*with_view_mask=*/true);
        stats.num_entries += node.nexts.size();
      }
    }
  }
  stats.num_states = merged.size();
  return stats;
}

}  // namespace sqp
