#include "core/mvmm_model.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <unordered_set>

#include "util/hash.h"
#include "util/math_util.h"

namespace sqp {
namespace {

/// Deduplicates (query, score) contributions by query and fills the top-N
/// ranking (score desc, query asc). `raw` is scratch owned by the caller;
/// bounded selection via nth_element avoids sorting the full candidate set.
void MergeAndRank(std::vector<ScoredQuery>* raw, size_t top_n,
                  Recommendation* rec) {
  std::sort(raw->begin(), raw->end(),
            [](const ScoredQuery& a, const ScoredQuery& b) {
              return a.query < b.query;
            });
  size_t out = 0;
  for (size_t i = 0; i < raw->size();) {
    ScoredQuery merged = (*raw)[i];
    for (++i; i < raw->size() && (*raw)[i].query == merged.query; ++i) {
      merged.score += (*raw)[i].score;
    }
    (*raw)[out++] = merged;
  }
  raw->resize(out);

  const auto by_rank = [](const ScoredQuery& a, const ScoredQuery& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.query < b.query;
  };
  if (raw->size() > top_n) {
    std::nth_element(raw->begin(),
                     raw->begin() + static_cast<ptrdiff_t>(top_n), raw->end(),
                     by_rank);
    raw->resize(top_n);
  }
  std::sort(raw->begin(), raw->end(), by_rank);
  rec->queries.assign(raw->begin(), raw->end());
}

}  // namespace

std::vector<VmmOptions> MvmmOptions::DefaultComponents(size_t max_depth) {
  // Paper Section IV-C.2 trains "K D-bounded VMM models, {P_D, D=1..K}",
  // each "with a range of epsilon values"; Section V-D uses 11 components.
  // The default crosses D = 1..deepest with epsilon in {0.0, 0.05} and adds
  // one (deepest, 0.1) component: 11 components at the default depth 5,
  // covering both the depth and the epsilon axes of the model family.
  const size_t deepest = max_depth == 0 ? 5 : max_depth;
  std::vector<VmmOptions> components;
  components.reserve(2 * deepest + 1);
  for (size_t depth = 1; depth <= deepest; ++depth) {
    for (double epsilon : {0.0, 0.05}) {
      VmmOptions vmm;
      vmm.epsilon = epsilon;
      vmm.max_depth = depth;
      components.push_back(vmm);
    }
  }
  VmmOptions last;
  last.epsilon = 0.1;
  last.max_depth = deepest;
  components.push_back(last);
  return components;
}

MvmmModel::MvmmModel(MvmmOptions options) : options_(std::move(options)) {
  if (options_.components.empty()) {
    options_.components =
        MvmmOptions::DefaultComponents(options_.default_max_depth);
  }
}

Status MvmmModel::Train(const TrainingData& data) {
  SQP_RETURN_IF_ERROR(internal::ValidateTrainingData(data));
  if (options_.components.empty()) {
    return Status::InvalidArgument("MVMM needs at least one component");
  }
  vocabulary_size_ = data.vocabulary_size;
  components_.clear();
  shared_pst_.reset();

  // One shared counting pass for all components. Depth must accommodate the
  // deepest component; any unbounded component forces an unbounded index.
  size_t shared_depth = 0;
  bool any_unbounded = false;
  for (const VmmOptions& c : options_.components) {
    if (c.max_depth == 0) any_unbounded = true;
    shared_depth = std::max(shared_depth, c.max_depth);
  }
  const size_t need_depth = any_unbounded ? 0 : shared_depth;
  const ContextIndex* index = data.substring_index;
  const bool compatible =
      index != nullptr && index->CoversSubstringDepth(need_depth);
  ContextIndex local;
  if (!compatible) {
    local.Build(*data.sessions, ContextIndex::Mode::kSubstring, need_depth);
    index = &local;
  }

  for (const VmmOptions& c : options_.components) {
    components_.push_back(std::make_unique<VmmModel>(c));
  }

  if (components_.size() <= Pst::kMaxViews) {
    // Single-pass shared build: one maximal tree with per-node component
    // membership masks; every component becomes a pruned view of it.
    std::vector<PstOptions> views;
    views.reserve(components_.size());
    for (const VmmOptions& c : options_.components) {
      views.push_back(PstOptions{.epsilon = c.epsilon,
                                 .max_depth = c.max_depth,
                                 .min_support = c.min_support});
    }
    auto shared = std::make_shared<Pst>();
    SQP_RETURN_IF_ERROR(shared->BuildShared(*index, views));
    shared_pst_ = std::move(shared);
    for (size_t c = 0; c < components_.size(); ++c) {
      SQP_RETURN_IF_ERROR(components_[c]->TrainFromSharedPst(
          shared_pst_, c, data.vocabulary_size));
    }
  } else {
    // Defensive fallback beyond the mask width: standalone component
    // training off the shared counting pass, sharded across workers when
    // requested (this is the one remaining path with real per-component
    // training cost; paper Section V-F.1).
    TrainingData component_data = data;
    component_data.substring_index = index;
    if (options_.training_threads <= 1) {
      for (const auto& vmm : components_) {
        SQP_RETURN_IF_ERROR(vmm->Train(component_data));
      }
    } else {
      std::vector<Status> statuses(components_.size());
      std::vector<std::thread> workers;
      const size_t num_workers =
          std::min(options_.training_threads, components_.size());
      std::atomic<size_t> next{0};
      for (size_t w = 0; w < num_workers; ++w) {
        workers.emplace_back([&] {
          while (true) {
            const size_t i = next.fetch_add(1);
            if (i >= components_.size()) return;
            statuses[i] = components_[i]->Train(component_data);
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
      for (const Status& status : statuses) {
        SQP_RETURN_IF_ERROR(status);
      }
    }
  }

  sigmas_.assign(components_.size(), options_.initial_sigma);
  if (options_.weighting == MixtureWeighting::kGaussianEditDistance) {
    FitSigmas(*data.sessions);
  }
  trained_ = true;
  return Status::OK();
}

size_t MvmmModel::SharedMatchDepths(std::span<const QueryId> context,
                                    std::vector<int32_t>* path,
                                    std::vector<size_t>* matched) const {
  const size_t depth = shared_pst_->MatchPath(context, path);
  const size_t k = components_.size();
  matched->assign(k, 0);
  const std::vector<Pst::ViewMask>& masks = shared_pst_->view_masks();
  for (size_t c = 0; c < k; ++c) {
    const Pst::ViewMask bit = Pst::ViewMask{1} << c;
    // View membership is ancestor-closed, so the nodes carrying this
    // component's bit form a prefix of the path.
    size_t m = depth;
    while (m > 0 &&
           (masks[static_cast<size_t>((*path)[m - 1])] & bit) == 0) {
      --m;
    }
    (*matched)[c] = m;
  }
  return depth;
}

double MvmmModel::EscapeWeight(const Pst::Node& state, size_t context_len,
                               size_t matched, size_t component) const {
  const size_t dropped = context_len - matched;
  if (dropped == 0) return 1.0;
  return internal::EscapeMass(
      state, dropped, components_[component]->options().default_escape);
}

std::vector<double> MvmmModel::RawWeights(
    size_t context_len, const std::vector<size_t>& matched) const {
  std::vector<double> weights(components_.size(), 0.0);
  switch (options_.weighting) {
    case MixtureWeighting::kGaussianEditDistance: {
      for (size_t c = 0; c < components_.size(); ++c) {
        // The matched state's context is the trailing matched[c] queries of
        // the online context, so the edit distance degenerates to the
        // number of dropped prefix queries.
        const double d = static_cast<double>(context_len - matched[c]);
        weights[c] = GaussianPdf(d, sigmas_[c]);
      }
      // With a tightly fitted sigma the Gaussian can underflow for every
      // component (all matches far from the context); fall back to
      // weighting by match depth so the mixture stays well defined.
      double total = 0.0;
      for (double w : weights) total += w;
      if (total <= 1e-280) {
        for (size_t c = 0; c < components_.size(); ++c) {
          weights[c] = 1.0 + static_cast<double>(matched[c]);
        }
      }
      break;
    }
    case MixtureWeighting::kUniform:
      weights.assign(components_.size(), 1.0);
      break;
    case MixtureWeighting::kLongestMatch: {
      size_t best = 0;
      for (size_t m : matched) best = std::max(best, m);
      for (size_t c = 0; c < components_.size(); ++c) {
        weights[c] = matched[c] == best ? 1.0 : 0.0;
      }
      break;
    }
  }
  return weights;
}

void MvmmModel::BuildWeightSample(const AggregatedSession& session,
                                  WeightSample* sample) const {
  const size_t k = components_.size();
  const std::vector<QueryId>& q = session.queries;
  sample->edit_distance.resize(k);
  sample->sequence_prob.assign(k, 1.0);

  if (shared_pst_ == nullptr) {
    const std::span<const QueryId> full(q.data(), q.size() - 1);
    for (size_t c = 0; c < k; ++c) {
      const VmmMatch match = components_[c]->Match(full);
      sample->edit_distance[c] =
          static_cast<double>(full.size() - match.matched_length);
      sample->sequence_prob[c] = components_[c]->SequenceProb(q);
    }
    return;
  }

  thread_local std::vector<int32_t> path;
  thread_local std::vector<size_t> matched;
  thread_local std::vector<double> cond_at;  // per matched depth, 0 = root

  // Eq. 3 chain for every component off one tree walk per prefix: all
  // component states lie on the recorded path, so the smoothed conditional
  // is computed once per distinct matched depth instead of once per
  // component. The final prefix is the full context, whose matched depths
  // also yield the edit distances (d = dropped prefix queries).
  const std::vector<Pst::Node>& nodes = shared_pst_->nodes();
  for (size_t i = 1; i < q.size(); ++i) {
    const std::span<const QueryId> prefix(q.data(), i);
    const size_t depth = SharedMatchDepths(prefix, &path, &matched);
    cond_at.assign(depth + 1, -1.0);
    for (size_t c = 0; c < k; ++c) {
      const size_t m = matched[c];
      const Pst::Node& state =
          m == 0 ? nodes[0] : nodes[static_cast<size_t>(path[m - 1])];
      if (cond_at[m] < 0.0) {
        cond_at[m] = internal::SmoothedProb(state.nexts, state.total_count,
                                            vocabulary_size_, q[i]);
      }
      sample->sequence_prob[c] *= EscapeWeight(state, i, m, c) * cond_at[m];
    }
    if (i + 1 == q.size()) {  // prefix == full context
      for (size_t c = 0; c < k; ++c) {
        sample->edit_distance[c] = static_cast<double>(i - matched[c]);
      }
    }
  }
}

void MvmmModel::FitSigmas(const std::vector<AggregatedSession>& sessions) {
  fit_report_ = MvmmFitReport{};
  // Pseudo-test sample: the most frequent multi-query sessions, with
  // P(X_T) proportional to their aggregated frequency (Eq. 8/9).
  std::vector<const AggregatedSession*> pool;
  for (const AggregatedSession& s : sessions) {
    if (s.queries.size() >= 2) pool.push_back(&s);
  }
  std::sort(pool.begin(), pool.end(),
            [](const AggregatedSession* a, const AggregatedSession* b) {
              if (a->frequency != b->frequency) {
                return a->frequency > b->frequency;
              }
              return a->queries < b->queries;
            });
  if (pool.size() > options_.weight_sample_size) {
    pool.resize(options_.weight_sample_size);
  }
  if (pool.empty()) return;

  const size_t k = components_.size();
  std::vector<WeightSample> samples(pool.size());
  double weight_total = 0.0;
  for (size_t i = 0; i < pool.size(); ++i) {
    samples[i].weight = static_cast<double>(pool[i]->frequency);
    weight_total += samples[i].weight;
  }
  // Per-sample evaluation is independent and writes only its own slot, so
  // sharding it across workers leaves the result bit-identical.
  if (options_.training_threads > 1 && samples.size() > 1) {
    std::vector<std::thread> workers;
    const size_t num_workers =
        std::min(options_.training_threads, samples.size());
    std::atomic<size_t> next{0};
    for (size_t w = 0; w < num_workers; ++w) {
      workers.emplace_back([&] {
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= samples.size()) return;
          BuildWeightSample(*pool[i], &samples[i]);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  } else {
    for (size_t i = 0; i < samples.size(); ++i) {
      BuildWeightSample(*pool[i], &samples[i]);
    }
  }
  for (WeightSample& s : samples) s.weight /= weight_total;

  // Edit distances are dropped-prefix counts: small integers. The fit
  // evaluators run off (component, distance) lookup tables sized by the
  // largest observed distance.
  size_t max_d = 0;
  for (const WeightSample& s : samples) {
    for (double d : s.edit_distance) {
      max_d = std::max(max_d, static_cast<size_t>(d));
    }
  }

  // Maximize f(sigma) = sum_X P(X) log sum_D g(d_D; sigma_D) P_D(X).
  // Damped Newton with the analytic Hessian (one pass over the samples per
  // iteration); gradient-ascent fallback keeps every accepted step an
  // improvement.
  double f = Objective(samples, sigmas_, max_d);
  fit_report_.initial_objective = f;
  std::vector<double> grad;
  std::vector<double> hessian;
  for (size_t iter = 0; iter < options_.max_newton_iterations; ++iter) {
    const double f_before = f;
    FitDerivatives(samples, sigmas_, max_d, &grad, &hessian);
    double grad_norm = 0.0;
    for (double g : grad) grad_norm += g * g;
    grad_norm = std::sqrt(grad_norm);
    if (grad_norm < 1e-9) break;

    std::vector<double> step;
    bool have_newton =
        SolveLinearSystem(hessian, grad, k, &step);  // H * step = grad
    // At a maximum H is negative definite, so sigma_new = sigma - step
    // (Eq. 10). Reject the Newton direction if it is not an ascent move.
    bool accepted = false;
    if (have_newton) {
      double damping = 1.0;
      for (int attempt = 0; attempt < 8 && !accepted; ++attempt) {
        std::vector<double> trial = sigmas_;
        for (size_t i = 0; i < k; ++i) {
          trial[i] = std::max(options_.min_sigma,
                              trial[i] - damping * step[i]);
        }
        const double ft = Objective(samples, trial, max_d);
        if (ft > f) {
          sigmas_ = std::move(trial);
          f = ft;
          accepted = true;
          fit_report_.used_newton = true;
        }
        damping *= 0.5;
      }
    }
    if (!accepted) {
      // Backtracking gradient ascent.
      double lr = 0.5;
      for (int attempt = 0; attempt < 12 && !accepted; ++attempt) {
        std::vector<double> trial = sigmas_;
        for (size_t i = 0; i < k; ++i) {
          trial[i] = std::max(options_.min_sigma, trial[i] + lr * grad[i]);
        }
        const double ft = Objective(samples, trial, max_d);
        if (ft > f) {
          sigmas_ = std::move(trial);
          f = ft;
          accepted = true;
        }
        lr *= 0.5;
      }
    }
    ++fit_report_.iterations;
    if (!accepted) break;  // converged (no improving step)
    // Converged: the accepted step no longer moves the objective.
    const double improvement = f - f_before;
    if (improvement <
        options_.convergence_tolerance * (1.0 + std::fabs(f_before))) {
      break;
    }
  }
  fit_report_.final_objective = f;
}

double MvmmModel::Objective(const std::vector<WeightSample>& samples,
                            const std::vector<double>& sigmas,
                            size_t max_d) const {
  const size_t k = sigmas.size();
  const size_t stride = max_d + 1;
  thread_local std::vector<double> g_table;
  g_table.assign(k * stride, 0.0);
  for (size_t c = 0; c < k; ++c) {
    for (size_t d = 0; d <= max_d; ++d) {
      g_table[c * stride + d] = GaussianPdf(static_cast<double>(d), sigmas[c]);
    }
  }
  double f = 0.0;
  for (const WeightSample& s : samples) {
    double mix = 0.0;
    for (size_t c = 0; c < k; ++c) {
      mix += g_table[c * stride + static_cast<size_t>(s.edit_distance[c])] *
             s.sequence_prob[c];
    }
    if (mix <= 0.0) mix = 1e-300;
    f += s.weight * std::log(mix);
  }
  return f;
}

void MvmmModel::FitDerivatives(const std::vector<WeightSample>& samples,
                               const std::vector<double>& sigmas,
                               size_t max_d, std::vector<double>* gradient,
                               std::vector<double>* hessian) const {
  // For f = sum_X w log m, m = sum_c g_c P_c:
  //   grad_c = sum_X w g_c' P_c / m
  //   H_cj = sum_X w [ delta_cj g_c'' P_c / m - (g_c' P_c)(g_j' P_j) / m^2 ]
  // with g' = g (d^2/s^3 - 1/s) and g'' = g ((d^2/s^3 - 1/s)^2
  //                                          - 3 d^2/s^4 + 1/s^2).
  const size_t k = sigmas.size();
  const size_t stride = max_d + 1;
  thread_local std::vector<double> g_table;   // g
  thread_local std::vector<double> gp_table;  // g'
  thread_local std::vector<double> gt_table;  // g''
  g_table.assign(k * stride, 0.0);
  gp_table.assign(k * stride, 0.0);
  gt_table.assign(k * stride, 0.0);
  for (size_t c = 0; c < k; ++c) {
    const double sigma = sigmas[c];
    for (size_t di = 0; di <= max_d; ++di) {
      const double d = static_cast<double>(di);
      const double g = GaussianPdf(d, sigma);
      const double a = d * d / (sigma * sigma * sigma) - 1.0 / sigma;
      const double a_prime =
          -3.0 * d * d / (sigma * sigma * sigma * sigma) +
          1.0 / (sigma * sigma);
      g_table[c * stride + di] = g;
      gp_table[c * stride + di] = g * a;
      gt_table[c * stride + di] = g * (a * a + a_prime);
    }
  }

  gradient->assign(k, 0.0);
  hessian->assign(k * k, 0.0);
  std::vector<double> u(k);  // g_c' P_c
  for (const WeightSample& s : samples) {
    double mix = 0.0;
    for (size_t c = 0; c < k; ++c) {
      const size_t di = static_cast<size_t>(s.edit_distance[c]);
      u[c] = gp_table[c * stride + di] * s.sequence_prob[c];
      mix += g_table[c * stride + di] * s.sequence_prob[c];
    }
    if (mix <= 0.0) continue;
    const double inv = 1.0 / mix;
    for (size_t c = 0; c < k; ++c) {
      const size_t di = static_cast<size_t>(s.edit_distance[c]);
      (*gradient)[c] += s.weight * u[c] * inv;
      (*hessian)[c * k + c] +=
          s.weight * gt_table[c * stride + di] * s.sequence_prob[c] * inv;
      const double scaled = s.weight * u[c] * inv * inv;
      for (size_t j = 0; j < k; ++j) {
        (*hessian)[c * k + j] -= scaled * u[j];
      }
    }
  }
}

std::vector<double> MvmmModel::MixtureWeights(
    std::span<const QueryId> context) const {
  SQP_CHECK(trained_);
  std::vector<size_t> matched(components_.size(), 0);
  if (shared_pst_) {
    thread_local std::vector<int32_t> path;
    SharedMatchDepths(context, &path, &matched);
  } else {
    for (size_t c = 0; c < components_.size(); ++c) {
      matched[c] = components_[c]->Match(context).matched_length;
    }
  }
  std::vector<double> weights = RawWeights(context.size(), matched);
  NormalizeInPlace(&weights);
  return weights;
}

Recommendation MvmmModel::Recommend(std::span<const QueryId> context,
                                    size_t top_n) const {
  Recommendation rec;
  if (!trained_ || context.empty()) return rec;

  thread_local std::vector<int32_t> path;
  thread_local std::vector<size_t> matched;
  thread_local std::vector<double> level_weight;
  thread_local std::vector<ScoredQuery> raw;

  size_t depth = 0;
  std::vector<VmmMatch> fallback_matches;
  if (shared_pst_) {
    depth = SharedMatchDepths(context, &path, &matched);
  } else {
    matched.assign(components_.size(), 0);
    fallback_matches.resize(components_.size());
    for (size_t c = 0; c < components_.size(); ++c) {
      fallback_matches[c] = components_[c]->Match(context);
      matched[c] = fallback_matches[c].matched_length;
      depth = std::max(depth, matched[c]);
    }
  }
  if (depth == 0) return rec;  // uncovered, like its components
  std::vector<double> weights = RawWeights(context.size(), matched);
  NormalizeInPlace(&weights);

  // Combine escape-weighted generative scores across components (paper
  // Section IV-C.3: predicted queries of all components are re-ranked
  // w.r.t. generative probabilities and model weights). Each component
  // also contributes its matched state's suffix ancestors at
  // escape-discounted weight (Eq. 5 applied to ranking): deep states often
  // carry very few continuations, and the recursion fills the list with
  // shallower-context candidates without disturbing the deep ranking.
  // All matched states are nested suffixes of the context, so the per-level
  // weights accumulate on one path and every state's count list is touched
  // exactly once — no per-call hash map.
  raw.clear();
  if (shared_pst_) {
    const std::vector<Pst::Node>& nodes = shared_pst_->nodes();
    level_weight.assign(depth, 0.0);
    for (size_t c = 0; c < components_.size(); ++c) {
      if (weights[c] <= 0.0 || matched[c] == 0) continue;
      const Pst::Node& state = nodes[static_cast<size_t>(path[matched[c] - 1])];
      double lw = weights[c] *
                  EscapeWeight(state, context.size(), matched[c], c);
      const double esc = components_[c]->options().default_escape;
      for (size_t d = matched[c]; d >= 1; --d) {
        level_weight[d - 1] += lw;
        lw *= esc;
      }
    }
    for (size_t d = 0; d < depth; ++d) {
      if (level_weight[d] <= 0.0) continue;
      const Pst::Node& node = nodes[static_cast<size_t>(path[d])];
      if (node.total_count == 0) continue;
      const double scale =
          level_weight[d] / static_cast<double>(node.total_count);
      for (const NextQueryCount& nc : node.nexts) {
        raw.push_back(
            ScoredQuery{nc.query, scale * static_cast<double>(nc.count)});
      }
    }
  } else {
    for (size_t c = 0; c < components_.size(); ++c) {
      if (weights[c] <= 0.0 || matched[c] == 0) continue;
      const Pst& pst = components_[c]->pst();
      const VmmMatch& match = fallback_matches[c];
      const Pst::Node* node = match.state;
      double lw = weights[c] * match.escape_weight;
      while (node != nullptr && !node->context.empty()) {
        if (node->total_count > 0) {
          const double scale =
              lw / static_cast<double>(node->total_count);
          for (const NextQueryCount& nc : node->nexts) {
            raw.push_back(
                ScoredQuery{nc.query, scale * static_cast<double>(nc.count)});
          }
        }
        lw *= components_[c]->options().default_escape;
        node = node->parent >= 0
                   ? &pst.nodes()[static_cast<size_t>(node->parent)]
                   : nullptr;
      }
    }
  }
  if (raw.empty()) return rec;

  rec.covered = true;
  rec.matched_length = depth;
  MergeAndRank(&raw, top_n, &rec);
  return rec;
}

bool MvmmModel::Covers(std::span<const QueryId> context) const {
  if (!trained_) return false;
  if (shared_pst_) {
    if (context.empty()) return false;
    size_t matched = 0;
    shared_pst_->MatchLongestSuffix(context, &matched);
    return matched >= 1;
  }
  for (const auto& component : components_) {
    if (component->Covers(context)) return true;
  }
  return false;
}

double MvmmModel::ConditionalProb(std::span<const QueryId> context,
                                  QueryId next) const {
  if (!trained_) return 0.0;
  if (shared_pst_ == nullptr) {
    const std::vector<double> weights = MixtureWeights(context);
    double p = 0.0;
    for (size_t c = 0; c < components_.size(); ++c) {
      p += weights[c] * components_[c]->ConditionalProb(context, next);
    }
    return p;
  }
  thread_local std::vector<int32_t> path;
  thread_local std::vector<size_t> matched;
  thread_local std::vector<double> cond_at;
  const size_t depth = SharedMatchDepths(context, &path, &matched);
  std::vector<double> weights = RawWeights(context.size(), matched);
  NormalizeInPlace(&weights);
  const std::vector<Pst::Node>& nodes = shared_pst_->nodes();
  cond_at.assign(depth + 1, -1.0);
  double p = 0.0;
  for (size_t c = 0; c < components_.size(); ++c) {
    const size_t m = matched[c];
    const Pst::Node& state =
        m == 0 ? nodes[0] : nodes[static_cast<size_t>(path[m - 1])];
    if (cond_at[m] < 0.0) {
      cond_at[m] = internal::SmoothedProb(state.nexts, state.total_count,
                                          vocabulary_size_, next);
    }
    p += weights[c] * cond_at[m];
  }
  return p;
}

ModelStats MvmmModel::Stats() const {
  ModelStats stats;
  stats.name = std::string(Name());
  if (shared_pst_) {
    // Merged-PST accounting (paper Section V-F.2) over the *actual* shared
    // structure: every node stored once, plus one membership mask per node.
    stats.num_states = shared_pst_->size();
    stats.num_entries = shared_pst_->num_entries();
    stats.memory_bytes = shared_pst_->memory_bytes();
    return stats;
  }
  // Fallback components own their trees; estimate the merged layout by
  // deduplicating structurally identical nodes.
  std::unordered_set<std::vector<QueryId>, IdSequenceHash> merged;
  for (const auto& component : components_) {
    for (const Pst::Node& node : component->pst().nodes()) {
      if (merged.insert(node.context).second) {
        stats.memory_bytes += sizeof(Pst::Node) +
                              node.context.size() * sizeof(QueryId) +
                              node.nexts.size() * sizeof(NextQueryCount) +
                              node.children.size() * sizeof(Pst::Edge) +
                              sizeof(Pst::ViewMask);
        stats.num_entries += node.nexts.size();
      }
    }
  }
  stats.num_states = merged.size();
  return stats;
}

}  // namespace sqp
