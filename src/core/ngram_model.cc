#include "core/ngram_model.h"

#include "core/memory_accounting.h"

namespace sqp {

NgramModel::NgramModel(NgramOptions options) : options_(options) {}

Status NgramModel::Train(const TrainingData& data) {
  SQP_RETURN_IF_ERROR(internal::ValidateTrainingData(data));
  table_.clear();
  vocabulary_size_ = data.vocabulary_size;

  ContextIndex index;
  index.Build(*data.sessions, ContextIndex::Mode::kPrefix,
              options_.max_context_length);
  table_.reserve(index.size());
  for (const ContextEntry* entry : index.SortedEntries()) {
    table_.emplace(entry->context, *entry);
  }
  return Status::OK();
}

const ContextEntry* NgramModel::Find(std::span<const QueryId> context) const {
  if (context.empty()) return nullptr;
  if (options_.max_context_length != 0 &&
      context.size() > options_.max_context_length) {
    return nullptr;  // no i-gram model of that order was trained
  }
  std::vector<QueryId> key(context.begin(), context.end());
  auto it = table_.find(key);
  if (it == table_.end()) return nullptr;
  return &it->second;
}

Recommendation NgramModel::Recommend(std::span<const QueryId> context,
                                     size_t top_n) const {
  Recommendation rec;
  const ContextEntry* entry = Find(context);
  if (entry == nullptr) return rec;
  rec.covered = true;
  rec.matched_length = context.size();
  internal::FillTopN(entry->nexts, entry->total_count, top_n, &rec);
  return rec;
}

bool NgramModel::Covers(std::span<const QueryId> context) const {
  return Find(context) != nullptr;
}

double NgramModel::ConditionalProb(std::span<const QueryId> context,
                                   QueryId next) const {
  const ContextEntry* entry = Find(context);
  if (entry == nullptr) {
    return 1.0 / static_cast<double>(vocabulary_size_ == 0 ? 1
                                                           : vocabulary_size_);
  }
  return internal::SmoothedProb(entry->nexts, entry->total_count,
                                vocabulary_size_, next);
}

ModelStats NgramModel::Stats() const {
  ModelStats stats;
  stats.name = std::string(Name());
  stats.num_states = table_.size();
  uint64_t context_ids = 0;
  for (const auto& [context, entry] : table_) {
    stats.num_entries += entry.nexts.size();
    context_ids += context.size();
  }
  stats.memory_bytes =
      ContextTableBytes(stats.num_states, stats.num_entries, context_ids);
  return stats;
}

}  // namespace sqp
