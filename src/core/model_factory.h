#ifndef SQP_CORE_MODEL_FACTORY_H_
#define SQP_CORE_MODEL_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/click_cluster_model.h"
#include "core/hmm_model.h"
#include "core/mvmm_model.h"
#include "core/ngram_model.h"
#include "core/prediction_model.h"
#include "core/vmm_model.h"
#include "util/status.h"

namespace sqp {

/// The model families evaluated in the paper, plus the extensions this
/// library implements (click-through clusters from the related work, HMM
/// from the future work).
enum class ModelKind {
  kAdjacency,
  kCooccurrence,
  kNgram,
  kVmm,
  kMvmm,
  kClickCluster,
  kHmm,
};

std::string_view ModelKindName(ModelKind kind);

/// Union-style configuration for CreateModel; only the member matching
/// `kind` is consulted.
struct ModelConfig {
  ModelKind kind = ModelKind::kMvmm;
  NgramOptions ngram;
  VmmOptions vmm;
  MvmmOptions mvmm;
  ClickClusterOptions click_cluster;
  HmmOptions hmm;
};

/// Creates an untrained model of the requested kind.
std::unique_ptr<PredictionModel> CreateModel(const ModelConfig& config);

/// Creates the seven-model suite of the paper's evaluation section:
/// Adjacency, Co-occurrence, N-gram, VMM(0.0), VMM(0.05), VMM(0.1), MVMM.
/// `vmm_max_depth` bounds the VMM/MVMM context length (0 = unbounded).
std::vector<std::unique_ptr<PredictionModel>> CreatePaperSuite(
    size_t vmm_max_depth = 0);

/// Trains every model in `models` on `data`; fails fast on the first error.
Status TrainAll(const std::vector<std::unique_ptr<PredictionModel>>& models,
                const TrainingData& data);

}  // namespace sqp

#endif  // SQP_CORE_MODEL_FACTORY_H_
