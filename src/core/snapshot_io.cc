#include "core/snapshot_io.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <tuple>
#include <utility>

#include "core/blob_format.h"
#include "util/byte_io.h"

#if defined(__unix__) || defined(__APPLE__)
#define SQP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace sqp {
namespace {

// ------------------------------------------------------------ blob layout
// The layout itself (constants, section ids, parse + structural
// validation) is defined once in core/blob_format.h, shared with the slim
// embedded predictor. This file adds what only the engine needs: file IO,
// owned/mapped storage, Status wrapping, and the writer.

using serving::BlobError;
using serving::BlobLayout;
using SectionId = serving::BlobSectionId;
using enum serving::BlobSectionId;

constexpr size_t kHeaderSize = serving::kBlobHeaderSize;
constexpr size_t kSectionRowSize = serving::kBlobSectionRowSize;
constexpr size_t kSectionAlignment = serving::kBlobSectionAlignment;
constexpr size_t kMetaSize = serving::kBlobMetaSize;

constexpr uint32_t kFlagNarrowIds = serving::kBlobFlagNarrowIds;
constexpr uint32_t kFlagNarrowMasks = serving::kBlobFlagNarrowMasks;

static_assert(kSnapshotFormatVersion == serving::kBlobFormatVersion,
              "snapshot_io and blob_format disagree on the format version");
static_assert(sizeof(kSnapshotMagic) == sizeof(serving::kBlobMagic));

size_t AlignUp(size_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

/// One array materialized in on-disk (little-endian) byte order. On LE
/// hosts this is a straight memcpy of the vector storage.
template <typename T>
std::vector<uint8_t> ToDiskBytes(std::span<const T> values) {
  std::vector<uint8_t> out(values.size_bytes());
  if (!values.empty()) {
    std::memcpy(out.data(), values.data(), values.size_bytes());
    if constexpr (!HostIsLittleEndian()) {
      ByteSwapInPlace(std::span<T>(reinterpret_cast<T*>(out.data()),
                                   values.size()));
    }
  }
  return out;
}

Status IoError(const std::string& what, const std::string& path) {
  return Status::IOError(what + ": " + path);
}

Status Corrupt(const std::string& what, const std::string& path) {
  return Status::InvalidArgument("corrupt snapshot blob (" + what +
                                 "): " + path);
}

// -------------------------------------------------------------- parsing

/// The decoded blob: META fields plus raw byte spans into the blob for
/// every bulk array. Spans alias the blob buffer — the buffer must outlive
/// any use of them.
struct ParsedBlob {
  uint64_t snapshot_version = 0;
  MixtureWeighting weighting = MixtureWeighting::kGaussianEditDistance;
  bool narrow_ids = false;
  bool narrow_masks = false;
  uint64_t top_k = 0;
  uint64_t num_nodes = 0;
  uint64_t num_entries = 0;
  uint64_t num_edges = 0;
  uint64_t root_index_size = 0;
  uint32_t num_components = 0;
  std::vector<double> sigmas;
  std::vector<double> component_escape;

  std::span<const uint8_t> next_begin, child_begin, total_count, start_count,
      count_shift, mask16, mask64, next_query, next_code, edge_query,
      edge_child, root_index;
};

/// Reinterprets a section's bytes as a fixed-width array. Sections start
/// 64-byte aligned (validated), so the cast is naturally aligned for every
/// element type the format uses.
template <typename T>
std::span<const T> TypedSpan(std::span<const uint8_t> bytes) {
  return {reinterpret_cast<const T*>(bytes.data()), bytes.size() / sizeof(T)};
}

/// Engine-side wrapper of serving::ParseBlobLayout — the shared,
/// runtime-free header/section-table/META validation the slim predictor
/// runs too. Maps every BlobError onto the typed Status taxonomy and
/// materializes the byte spans plus the endian-decoded mixture arrays.
Status ParseBlob(std::span<const uint8_t> blob, const std::string& path,
                 const SnapshotLoadOptions& options, ParsedBlob* out) {
  BlobLayout layout;
  const BlobError err = serving::ParseBlobLayout(
      blob.data(), blob.size(), options.verify_checksums, &layout);
  if (err == BlobError::kVersionMismatch) {
    return Status::InvalidArgument(
        "unsupported snapshot format version " +
        std::to_string(layout.format_version) + " (this build reads " +
        std::to_string(kSnapshotFormatVersion) + "): " + path);
  }
  if (err != BlobError::kNone) {
    return Corrupt(serving::BlobErrorMessage(err), path);
  }

  out->snapshot_version = layout.snapshot_version;
  out->weighting = layout.weighting;
  out->narrow_ids = layout.narrow_ids;
  out->narrow_masks = layout.narrow_masks;
  out->top_k = layout.top_k;
  out->num_nodes = layout.num_nodes;
  out->num_entries = layout.num_entries;
  out->num_edges = layout.num_edges;
  out->root_index_size = layout.root_index_size;
  out->num_components = layout.num_components;

  const auto section_bytes = [&](SectionId id) -> std::span<const uint8_t> {
    return blob.subspan(static_cast<size_t>(layout.sections[id].offset),
                        static_cast<size_t>(layout.sections[id].size));
  };

  // Mixture arrays are always decoded into owned storage (a handful of
  // doubles), so the endian conversion below covers them on any host.
  const std::span<const uint8_t> sigma_bytes = section_bytes(kSecSigmas);
  const std::span<const uint8_t> escape_bytes =
      section_bytes(kSecComponentEscape);
  out->sigmas.resize(out->num_components);
  out->component_escape.resize(out->num_components);
  for (uint32_t c = 0; c < out->num_components; ++c) {
    out->sigmas[c] =
        std::bit_cast<double>(LoadLE64(sigma_bytes.data() + 8 * c));
    out->component_escape[c] =
        std::bit_cast<double>(LoadLE64(escape_bytes.data() + 8 * c));
  }

  out->next_begin = section_bytes(kSecNextBegin);
  out->child_begin = section_bytes(kSecChildBegin);
  out->total_count = section_bytes(kSecTotalCount);
  out->start_count = section_bytes(kSecStartCount);
  out->count_shift = section_bytes(kSecCountShift);
  out->mask16 = section_bytes(kSecMask16);
  out->mask64 = section_bytes(kSecMask64);
  out->next_query = section_bytes(kSecNextQuery);
  out->next_code = section_bytes(kSecNextCode);
  out->edge_query = section_bytes(kSecEdgeQuery);
  out->edge_child = section_bytes(kSecEdgeChild);
  out->root_index = section_bytes(kSecRootIndex);
  return Status::OK();
}

/// Structural validation via the shared serving::ValidateBlobStructure
/// template (host-order arrays, so it is endianness-correct on any host).
Status ValidateParsed(const ParsedBlob& parsed, const std::string& path) {
  BlobError err = serving::ValidateBlobCountShifts(
      TypedSpan<uint8_t>(parsed.count_shift).data(), parsed.num_nodes);
  if (err == BlobError::kNone) {
    const auto next_begin = TypedSpan<uint32_t>(parsed.next_begin);
    const auto child_begin = TypedSpan<uint32_t>(parsed.child_begin);
    err = parsed.narrow_ids
              ? serving::ValidateBlobStructure<uint16_t, uint16_t>(
                    next_begin.data(), child_begin.data(),
                    TypedSpan<uint16_t>(parsed.edge_query).data(),
                    TypedSpan<uint16_t>(parsed.edge_child).data(),
                    TypedSpan<uint16_t>(parsed.root_index).data(),
                    parsed.root_index_size, parsed.num_nodes,
                    parsed.num_entries, parsed.num_edges)
              : serving::ValidateBlobStructure<uint32_t, uint32_t>(
                    next_begin.data(), child_begin.data(),
                    TypedSpan<uint32_t>(parsed.edge_query).data(),
                    TypedSpan<uint32_t>(parsed.edge_child).data(),
                    TypedSpan<uint32_t>(parsed.root_index).data(),
                    parsed.root_index_size, parsed.num_nodes,
                    parsed.num_entries, parsed.num_edges);
  }
  if (err != BlobError::kNone) {
    return Corrupt(serving::BlobErrorMessage(err), path);
  }
  return Status::OK();
}

Status ReadWholeFile(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return IoError("cannot open", path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return IoError("cannot stat", path);
  in.seekg(0);
  out->resize(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(out->data()), size)) {
    return IoError("short read", path);
  }
  return Status::OK();
}

/// Copies one section's bytes into an owned host-order vector.
template <typename T>
void CopyArray(std::span<const uint8_t> bytes, std::vector<T>* out) {
  out->resize(bytes.size() / sizeof(T));
  if (!out->empty()) {
    std::memcpy(out->data(), bytes.data(), bytes.size());
    if constexpr (!HostIsLittleEndian()) {
      ByteSwapInPlace(std::span<T>(*out));
    }
  }
}

/// Atomic publish shared by blob and manifest writers: a complete, durably
/// flushed write to a sibling tmp file, then one rename. Readers (and
/// crashed writers) never see a partial file, and — because the data is
/// fsync'ed before the rename — a crash right after publishing cannot
/// replace a previously good file with unflushed pages.
Status WriteFileAtomically(std::span<const uint8_t> bytes,
                           const std::string& path) {
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return IoError("cannot open", tmp_path);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      return IoError("write failed", tmp_path);
    }
  }
#ifdef SQP_HAVE_MMAP  // same platforms that have POSIX fds
  {
    const int fd = ::open(tmp_path.c_str(), O_WRONLY);
    if (fd < 0 || ::fsync(fd) != 0) {
      if (fd >= 0) ::close(fd);
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      return IoError("fsync failed", tmp_path);
    }
    ::close(fd);
  }
#endif
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    return IoError("rename failed", path);
  }
#ifdef SQP_HAVE_MMAP
  // Make the rename itself durable: fsync the containing directory.
  const std::filesystem::path parent =
      std::filesystem::path(path).has_parent_path()
          ? std::filesystem::path(path).parent_path()
          : std::filesystem::path(".");
  const int dir_fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);  // best effort — the data itself is already durable
    ::close(dir_fd);
  }
#endif
  return Status::OK();
}

}  // namespace

// ----------------------------------------------------------------- save

Status SnapshotIo::Save(const CompactSnapshot& snapshot,
                        const std::string& path) {
  // Materialize every section in on-disk byte order. The compact arrays
  // are at most a few MB — building the blob in memory keeps the offsets,
  // checksums and the atomic rename trivial.
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> sections;

  std::vector<uint8_t> meta(kMetaSize, 0);
  StoreLE64(meta.data(), snapshot.version());
  StoreLE32(meta.data() + 8, static_cast<uint32_t>(snapshot.weighting_));
  const bool narrow_masks = snapshot.mask64_.empty();
  uint32_t flags = 0;
  if (snapshot.is_narrow_) flags |= kFlagNarrowIds;
  if (narrow_masks) flags |= kFlagNarrowMasks;
  StoreLE32(meta.data() + 12, flags);
  StoreLE64(meta.data() + 16, snapshot.options_.top_k);
  StoreLE64(meta.data() + 24, snapshot.num_nodes());
  StoreLE64(meta.data() + 32, snapshot.num_entries());
  StoreLE64(meta.data() + 40, snapshot.num_edges());
  const uint64_t root_index_size =
      snapshot.is_narrow_ ? snapshot.narrow_.root_child_by_query.size()
                          : snapshot.wide_.root_child_by_query.size();
  StoreLE64(meta.data() + 48, root_index_size);
  StoreLE32(meta.data() + 56, static_cast<uint32_t>(snapshot.sigmas_.size()));
  sections.emplace_back(kSecMeta, std::move(meta));

  const auto push = [&sections](SectionId id, auto span) {
    sections.emplace_back(id, ToDiskBytes(span));
  };
  push(kSecSigmas, std::span<const double>(snapshot.sigmas_));
  push(kSecComponentEscape,
       std::span<const double>(snapshot.component_escape_));
  push(kSecNextBegin, std::span<const uint32_t>(snapshot.own_next_begin_));
  push(kSecChildBegin, std::span<const uint32_t>(snapshot.own_child_begin_));
  push(kSecTotalCount, std::span<const uint32_t>(snapshot.own_total_count_));
  push(kSecStartCount, std::span<const uint32_t>(snapshot.own_start_count_));
  push(kSecCountShift, std::span<const uint8_t>(snapshot.own_count_shift_));
  push(kSecMask16, std::span<const uint16_t>(snapshot.own_mask16_));
  push(kSecMask64, std::span<const Pst::ViewMask>(snapshot.own_mask64_));
  if (snapshot.is_narrow_) {
    push(kSecNextQuery,
         std::span<const uint16_t>(snapshot.narrow_.next_query));
    push(kSecEdgeQuery,
         std::span<const uint16_t>(snapshot.narrow_.edge_query));
    push(kSecEdgeChild,
         std::span<const uint16_t>(snapshot.narrow_.edge_child));
    push(kSecRootIndex,
         std::span<const uint16_t>(snapshot.narrow_.root_child_by_query));
  } else {
    push(kSecNextQuery, std::span<const uint32_t>(snapshot.wide_.next_query));
    push(kSecEdgeQuery, std::span<const uint32_t>(snapshot.wide_.edge_query));
    push(kSecEdgeChild, std::span<const uint32_t>(snapshot.wide_.edge_child));
    push(kSecRootIndex,
         std::span<const uint32_t>(snapshot.wide_.root_child_by_query));
  }
  push(kSecNextCode, std::span<const uint16_t>(snapshot.own_next_code_));

  // Lay the sections out 64-byte aligned after the table, then assemble.
  const size_t table_bytes = sections.size() * kSectionRowSize;
  size_t cursor = AlignUp(kHeaderSize + table_bytes);
  std::vector<std::tuple<uint32_t, uint64_t, uint64_t, uint32_t>> rows;
  rows.reserve(sections.size());
  for (const auto& [id, bytes] : sections) {
    rows.emplace_back(id, cursor, bytes.size(),
                      Crc32(bytes.data(), bytes.size()));
    cursor = AlignUp(cursor + bytes.size());
  }
  const uint64_t file_size = cursor;

  std::vector<uint8_t> blob(static_cast<size_t>(file_size), 0);
  std::memcpy(blob.data(), kSnapshotMagic, sizeof(kSnapshotMagic));
  StoreLE32(blob.data() + 8, kSnapshotFormatVersion);
  StoreLE32(blob.data() + 12, static_cast<uint32_t>(sections.size()));
  StoreLE64(blob.data() + 16, file_size);
  for (size_t i = 0; i < sections.size(); ++i) {
    uint8_t* row = blob.data() + kHeaderSize + i * kSectionRowSize;
    const auto& [id, offset, size, crc] = rows[i];
    StoreLE32(row, id);
    StoreLE32(row + 4, crc);
    StoreLE64(row + 8, offset);
    StoreLE64(row + 16, size);
    if (size > 0) {
      std::memcpy(blob.data() + offset, sections[i].second.data(),
                  static_cast<size_t>(size));
    }
  }
  StoreLE32(blob.data() + 24,
            Crc32(blob.data() + kHeaderSize, table_bytes));
  StoreLE32(blob.data() + 60, Crc32(blob.data(), 60));

  return WriteFileAtomically(blob, path);
}

// ----------------------------------------------------------------- load

Result<std::shared_ptr<const CompactSnapshot>> SnapshotIo::Load(
    const std::string& path, const SnapshotLoadOptions& options) {
  std::vector<uint8_t> blob;
  SQP_RETURN_IF_ERROR(ReadWholeFile(path, &blob));
  ParsedBlob parsed;
  SQP_RETURN_IF_ERROR(ParseBlob(blob, path, options, &parsed));

  std::shared_ptr<CompactSnapshot> out(new CompactSnapshot());
  out->version_ = parsed.snapshot_version;
  out->options_.top_k = static_cast<size_t>(parsed.top_k);
  out->weighting_ = parsed.weighting;
  out->sigmas_ = std::move(parsed.sigmas);
  out->component_escape_ = std::move(parsed.component_escape);
  out->is_narrow_ = parsed.narrow_ids;

  CopyArray(parsed.next_begin, &out->own_next_begin_);
  CopyArray(parsed.child_begin, &out->own_child_begin_);
  CopyArray(parsed.total_count, &out->own_total_count_);
  CopyArray(parsed.start_count, &out->own_start_count_);
  CopyArray(parsed.count_shift, &out->own_count_shift_);
  CopyArray(parsed.mask16, &out->own_mask16_);
  CopyArray(parsed.mask64, &out->own_mask64_);
  CopyArray(parsed.next_code, &out->own_next_code_);
  if (parsed.narrow_ids) {
    CopyArray(parsed.next_query, &out->narrow_.next_query);
    CopyArray(parsed.edge_query, &out->narrow_.edge_query);
    CopyArray(parsed.edge_child, &out->narrow_.edge_child);
    CopyArray(parsed.root_index, &out->narrow_.root_child_by_query);
  } else {
    CopyArray(parsed.next_query, &out->wide_.next_query);
    CopyArray(parsed.edge_query, &out->wide_.edge_query);
    CopyArray(parsed.edge_child, &out->wide_.edge_child);
    CopyArray(parsed.root_index, &out->wide_.root_child_by_query);
  }
  out->BindViews();

  // Structural validation runs over the owned (host-order) arrays so it is
  // endianness-correct on any host.
  ParsedBlob host = parsed;
  host.next_begin = {reinterpret_cast<const uint8_t*>(
                         out->own_next_begin_.data()),
                     out->own_next_begin_.size() * 4};
  host.child_begin = {reinterpret_cast<const uint8_t*>(
                          out->own_child_begin_.data()),
                      out->own_child_begin_.size() * 4};
  host.count_shift = {out->own_count_shift_.data(),
                      out->own_count_shift_.size()};
  if (parsed.narrow_ids) {
    host.edge_query = {reinterpret_cast<const uint8_t*>(
                           out->narrow_.edge_query.data()),
                       out->narrow_.edge_query.size() * 2};
    host.edge_child = {reinterpret_cast<const uint8_t*>(
                           out->narrow_.edge_child.data()),
                       out->narrow_.edge_child.size() * 2};
    host.root_index = {reinterpret_cast<const uint8_t*>(
                           out->narrow_.root_child_by_query.data()),
                       out->narrow_.root_child_by_query.size() * 2};
  } else {
    host.edge_query = {reinterpret_cast<const uint8_t*>(
                           out->wide_.edge_query.data()),
                       out->wide_.edge_query.size() * 4};
    host.edge_child = {reinterpret_cast<const uint8_t*>(
                           out->wide_.edge_child.data()),
                       out->wide_.edge_child.size() * 4};
    host.root_index = {reinterpret_cast<const uint8_t*>(
                           out->wide_.root_child_by_query.data()),
                       out->wide_.root_child_by_query.size() * 4};
  }
  SQP_RETURN_IF_ERROR(ValidateParsed(host, path));
  return std::shared_ptr<const CompactSnapshot>(std::move(out));
}

// ------------------------------------------------------------------ map

MappedCompactSnapshot::~MappedCompactSnapshot() {
#ifdef SQP_HAVE_MMAP
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_len_);
  }
#endif
}

namespace {

#ifdef SQP_HAVE_MMAP
constexpr size_t kHugetlbPageSize = size_t{2} << 20;  // 2 MiB

/// Tries to rehost the mapped blob in an anonymous MAP_HUGETLB region
/// (file-backed MAP_HUGETLB only works on hugetlbfs, so a copy is the only
/// portable way to get explicit huge pages under a regular filesystem).
/// On success swaps *base/*len to the huge mapping and unmaps the file
/// one; on any failure (typically an unprovisioned `vm.nr_hugepages`
/// pool) leaves the file mapping untouched.
bool RehostInHugetlb(void** base, size_t blob_size, size_t* len) {
#ifdef MAP_HUGETLB
  const size_t rounded =
      (blob_size + kHugetlbPageSize - 1) & ~(kHugetlbPageSize - 1);
  void* huge = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
  if (huge == MAP_FAILED) return false;
  std::memcpy(huge, *base, blob_size);
  if (::mprotect(huge, rounded, PROT_READ) != 0) {
    ::munmap(huge, rounded);
    return false;
  }
  ::munmap(*base, *len);
  *base = huge;
  *len = rounded;
  return true;
#else
  (void)base;
  (void)blob_size;
  (void)len;
  return false;
#endif
}
#endif  // SQP_HAVE_MMAP

}  // namespace

ModelStats MappedCompactSnapshot::Stats() const {
  ModelStats stats;
  stats.name = "MVMM (compact, mapped)";
  stats.num_states = num_nodes();
  stats.num_entries = num_entries();
  stats.memory_bytes = ServingBytes();
  return stats;
}

Result<std::shared_ptr<const MappedCompactSnapshot>> SnapshotIo::Map(
    const std::string& path, const SnapshotLoadOptions& options) {
  if (!HostIsLittleEndian()) {
    // The bulk arrays are little-endian on disk; serving them in place on
    // a big-endian host would transpose every id. Use Load (which
    // byte-swaps into owned arrays) there.
    return Status::FailedPrecondition(
        "zero-copy snapshot mapping requires a little-endian host; "
        "use LoadCompactSnapshot instead");
  }
  std::shared_ptr<MappedCompactSnapshot> out(new MappedCompactSnapshot());
  std::span<const uint8_t> blob;
#ifdef SQP_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return IoError("cannot stat", path);
  }
  out->blob_size_ = static_cast<size_t>(st.st_size);
  if (out->blob_size_ == 0) {
    ::close(fd);
    return Corrupt("empty file", path);
  }
  void* base =
      ::mmap(nullptr, out->blob_size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) return IoError("mmap failed", path);
  out->map_len_ = out->blob_size_;
  if (options.hugetlb &&
      RehostInHugetlb(&base, out->blob_size_, &out->map_len_)) {
    out->hugepage_mode_ = HugepageMode::kHugetlb;
  } else if (options.hugepages) {
#ifdef MADV_HUGEPAGE
    if (::madvise(base, out->blob_size_, MADV_HUGEPAGE) == 0) {
      out->hugepage_mode_ = HugepageMode::kAdvised;
    }
#endif
  }
  out->map_base_ = base;
  blob = {static_cast<const uint8_t*>(base), out->blob_size_};
#else
  // No mmap on this platform: fall back to an owned copy with identical
  // semantics (the views point into the heap buffer instead).
  SQP_RETURN_IF_ERROR(ReadWholeFile(path, &out->heap_copy_));
  out->blob_size_ = out->heap_copy_.size();
  blob = out->heap_copy_;
#endif

  ParsedBlob parsed;
  SQP_RETURN_IF_ERROR(ParseBlob(blob, path, options, &parsed));
  SQP_RETURN_IF_ERROR(ValidateParsed(parsed, path));

  out->version_ = parsed.snapshot_version;
  out->options_.top_k = static_cast<size_t>(parsed.top_k);
  out->weighting_ = parsed.weighting;
  out->sigmas_ = std::move(parsed.sigmas);
  out->component_escape_ = std::move(parsed.component_escape);
  out->is_narrow_ = parsed.narrow_ids;

  out->next_begin_ = TypedSpan<uint32_t>(parsed.next_begin);
  out->child_begin_ = TypedSpan<uint32_t>(parsed.child_begin);
  out->total_count_ = TypedSpan<uint32_t>(parsed.total_count);
  out->start_count_ = TypedSpan<uint32_t>(parsed.start_count);
  out->count_shift_ = TypedSpan<uint8_t>(parsed.count_shift);
  out->mask16_ = TypedSpan<uint16_t>(parsed.mask16);
  out->mask64_ = TypedSpan<Pst::ViewMask>(parsed.mask64);
  out->next_code_ = TypedSpan<uint16_t>(parsed.next_code);
  if (parsed.narrow_ids) {
    out->narrow_view_ = CompactPoolsView<uint16_t, uint16_t>{
        TypedSpan<uint16_t>(parsed.next_query),
        TypedSpan<uint16_t>(parsed.edge_query),
        TypedSpan<uint16_t>(parsed.edge_child),
        TypedSpan<uint16_t>(parsed.root_index)};
  } else {
    out->wide_view_ = CompactPoolsView<uint32_t, uint32_t>{
        TypedSpan<uint32_t>(parsed.next_query),
        TypedSpan<uint32_t>(parsed.edge_query),
        TypedSpan<uint32_t>(parsed.edge_child),
        TypedSpan<uint32_t>(parsed.root_index)};
  }
  out->FinalizeDerived();
  return std::shared_ptr<const MappedCompactSnapshot>(std::move(out));
}

// ------------------------------------------------------------- manifests

namespace {

constexpr size_t kManifestFixedHeader = 8 + 4 + 4 + 4 + 8;  // pre-shard bytes
constexpr uint32_t kMaxManifestShards = 4096;
constexpr uint32_t kMaxManifestPathLen = 4096;

Status CorruptManifest(const std::string& what, const std::string& path) {
  return Status::InvalidArgument("corrupt snapshot manifest (" + what +
                                 "): " + path);
}

}  // namespace

Status SnapshotIo::SaveManifest(const SnapshotManifest& manifest,
                                const std::string& path) {
  if (manifest.shards.empty()) {
    return Status::InvalidArgument("manifest needs at least one shard");
  }
  if (manifest.shards.size() > kMaxManifestShards) {
    return Status::InvalidArgument("manifest shard count exceeds limit");
  }
  std::vector<uint8_t> bytes;
  const auto append = [&bytes](const void* data, size_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    bytes.insert(bytes.end(), p, p + size);
  };
  const auto append_u32 = [&](uint32_t v) {
    uint8_t b[4];
    StoreLE32(b, v);
    append(b, sizeof(b));
  };
  const auto append_u64 = [&](uint64_t v) {
    uint8_t b[8];
    StoreLE64(b, v);
    append(b, sizeof(b));
  };
  append(kManifestMagic, sizeof(kManifestMagic));
  append_u32(kManifestFormatVersion);
  append_u32(manifest.partition_function);
  append_u32(manifest.num_shards());
  append_u64(manifest.version);
  for (const ShardBlobRef& shard : manifest.shards) {
    if (shard.path.empty() || shard.path.size() > kMaxManifestPathLen) {
      return Status::InvalidArgument("manifest shard path empty or too long");
    }
    append_u64(shard.file_size);
    append_u32(shard.header_crc);
    append_u32(static_cast<uint32_t>(shard.path.size()));
    append(shard.path.data(), shard.path.size());
  }
  append_u32(Crc32(bytes.data(), bytes.size()));
  return WriteFileAtomically(bytes, path);
}

Result<SnapshotManifest> SnapshotIo::LoadManifest(const std::string& path) {
  std::vector<uint8_t> bytes;
  SQP_RETURN_IF_ERROR(ReadWholeFile(path, &bytes));
  if (bytes.size() < kManifestFixedHeader + 4) {
    return CorruptManifest("shorter than the fixed header", path);
  }
  if (std::memcmp(bytes.data(), kManifestMagic, sizeof(kManifestMagic)) !=
      0) {
    return CorruptManifest("bad magic", path);
  }
  const uint32_t trailer = LoadLE32(bytes.data() + bytes.size() - 4);
  if (trailer != Crc32(bytes.data(), bytes.size() - 4)) {
    return CorruptManifest("checksum mismatch", path);
  }
  const uint32_t format_version = LoadLE32(bytes.data() + 8);
  if (format_version != kManifestFormatVersion) {
    return Status::InvalidArgument(
        "unsupported manifest format version " +
        std::to_string(format_version) + " (this build reads " +
        std::to_string(kManifestFormatVersion) + "): " + path);
  }
  SnapshotManifest out;
  out.partition_function = LoadLE32(bytes.data() + 12);
  const uint32_t num_shards = LoadLE32(bytes.data() + 16);
  out.version = LoadLE64(bytes.data() + 20);
  if (num_shards == 0 || num_shards > kMaxManifestShards) {
    return CorruptManifest("implausible shard count", path);
  }
  size_t cursor = kManifestFixedHeader;
  const size_t payload_end = bytes.size() - 4;
  out.shards.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (payload_end - cursor < 16) {
      return CorruptManifest("truncated shard row", path);
    }
    ShardBlobRef shard;
    shard.file_size = LoadLE64(bytes.data() + cursor);
    shard.header_crc = LoadLE32(bytes.data() + cursor + 8);
    const uint32_t path_len = LoadLE32(bytes.data() + cursor + 12);
    cursor += 16;
    if (path_len == 0 || path_len > kMaxManifestPathLen ||
        payload_end - cursor < path_len) {
      return CorruptManifest("implausible shard path length", path);
    }
    shard.path.assign(reinterpret_cast<const char*>(bytes.data() + cursor),
                      path_len);
    cursor += path_len;
    out.shards.push_back(std::move(shard));
  }
  if (cursor != payload_end) {
    return CorruptManifest("trailing bytes after shard rows", path);
  }
  return out;
}

Result<ShardBlobRef> SnapshotIo::DescribeBlob(const std::string& blob_path,
                                              const std::string& stored_path) {
  std::ifstream in(blob_path, std::ios::binary);
  if (!in.is_open()) return IoError("cannot open", blob_path);
  uint8_t header[kHeaderSize];
  if (!in.read(reinterpret_cast<char*>(header), kHeaderSize)) {
    return Corrupt("shorter than the file header", blob_path);
  }
  if (std::memcmp(header, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Corrupt("bad magic", blob_path);
  }
  ShardBlobRef ref;
  ref.path = stored_path;
  // The header records the exact file size and carries its own CRC over
  // bytes [0, 60); both double as the manifest's content pin.
  ref.file_size = LoadLE64(header + 16);
  ref.header_crc = LoadLE32(header + 60);
  std::error_code ec;
  const uint64_t actual = std::filesystem::file_size(blob_path, ec);
  if (ec || actual != ref.file_size) {
    return Corrupt("file size mismatch (truncated or padded)", blob_path);
  }
  if (ref.header_crc != Crc32(header, 60)) {
    return Corrupt("header checksum mismatch", blob_path);
  }
  return ref;
}

Status SnapshotIo::VerifyBlobRef(const ShardBlobRef& ref,
                                 const std::string& blob_path) {
  Result<ShardBlobRef> actual = DescribeBlob(blob_path, ref.path);
  if (!actual.ok()) return actual.status();
  if (actual->file_size != ref.file_size ||
      actual->header_crc != ref.header_crc) {
    return Status::InvalidArgument(
        "snapshot blob does not match its manifest pin (stale or foreign "
        "blob): " + blob_path);
  }
  return Status::OK();
}

Result<SnapshotFileKind> SnapshotIo::Probe(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return IoError("cannot open", path);
  char magic[8] = {};
  if (!in.read(magic, sizeof(magic))) {
    return Status::InvalidArgument("file too short to classify: " + path);
  }
  if (std::memcmp(magic, kSnapshotMagic, sizeof(kSnapshotMagic)) == 0) {
    return SnapshotFileKind::kBlob;
  }
  if (std::memcmp(magic, kManifestMagic, sizeof(kManifestMagic)) == 0) {
    return SnapshotFileKind::kManifest;
  }
  return Status::InvalidArgument(
      "not a snapshot blob or manifest (unknown magic): " + path);
}

std::string ResolveAgainstManifest(const std::string& manifest_path,
                                   const std::string& shard_path) {
  const std::filesystem::path shard(shard_path);
  if (shard.is_absolute()) return shard_path;
  const std::filesystem::path base =
      std::filesystem::path(manifest_path).parent_path();
  return (base / shard).string();
}

}  // namespace sqp
