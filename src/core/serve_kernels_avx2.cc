// AVX2 scoring kernels. This translation unit is compiled with -mavx2
// (see the CMakeLists SIMD block) and is only ever entered through the
// cpuid-checked dispatch table in serve_kernels.cc.

#include "core/serve_kernels_impl.h"

#ifdef SQP_HAVE_AVX2_KERNELS

#include <immintrin.h>

namespace sqp::kernels::avx2 {
namespace {

/// Eight entries per step: widen 8 u16 codes to i32 (vpmovzxwd), convert
/// each 128-bit half to four doubles, multiply by the broadcast scale, and
/// merge the lane products through the epoch-stamped accumulator in index
/// order. Per entry this is exactly one u16 -> double widening and one
/// double multiply — the same IEEE operations as the scalar kernel, so the
/// merged scores are bit-identical.
template <typename QT>
inline void ScoreRunAvx2(const QT* queries, const uint16_t* codes, size_t n,
                         double scale, DenseAccumulator* acc) {
  const __m256d vscale = _mm256_set1_pd(scale);
  alignas(32) double lane[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i c16 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(codes + i));
    const __m256i c32 = _mm256_cvtepu16_epi32(c16);
    const __m256d lo = _mm256_cvtepi32_pd(_mm256_castsi256_si128(c32));
    const __m256d hi = _mm256_cvtepi32_pd(_mm256_extracti128_si256(c32, 1));
    _mm256_store_pd(lane, _mm256_mul_pd(lo, vscale));
    _mm256_store_pd(lane + 4, _mm256_mul_pd(hi, vscale));
    acc->Add(queries[i + 0], lane[0]);
    acc->Add(queries[i + 1], lane[1]);
    acc->Add(queries[i + 2], lane[2]);
    acc->Add(queries[i + 3], lane[3]);
    acc->Add(queries[i + 4], lane[4]);
    acc->Add(queries[i + 5], lane[5]);
    acc->Add(queries[i + 6], lane[6]);
    acc->Add(queries[i + 7], lane[7]);
  }
  for (; i < n; ++i) {
    acc->Add(queries[i], scale * static_cast<double>(codes[i]));
  }
}

}  // namespace

void ScoreRunU16(const uint16_t* queries, const uint16_t* codes, size_t n,
                 double scale, DenseAccumulator* acc) {
  ScoreRunAvx2(queries, codes, n, scale, acc);
}

void ScoreRunU32(const uint32_t* queries, const uint16_t* codes, size_t n,
                 double scale, DenseAccumulator* acc) {
  ScoreRunAvx2(queries, codes, n, scale, acc);
}

}  // namespace sqp::kernels::avx2

#endif  // SQP_HAVE_AVX2_KERNELS
