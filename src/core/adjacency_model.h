#ifndef SQP_CORE_ADJACENCY_MODEL_H_
#define SQP_CORE_ADJACENCY_MODEL_H_

#include <unordered_map>

#include "core/prediction_model.h"

namespace sqp {

/// Pair-wise **Adjacency** baseline (paper Section V-B, after Jones et al.):
/// given the user's last query q, recommends the queries that most often
/// immediately follow q anywhere in a training session. Order-sensitive but
/// blind to anything before the final context query.
class AdjacencyModel : public PredictionModel {
 public:
  AdjacencyModel() = default;

  std::string_view Name() const override { return "Adjacency"; }
  Status Train(const TrainingData& data) override;
  Recommendation Recommend(std::span<const QueryId> context,
                           size_t top_n) const override;
  bool Covers(std::span<const QueryId> context) const override;
  double ConditionalProb(std::span<const QueryId> context,
                         QueryId next) const override;
  ModelStats Stats() const override;

 private:
  const ContextEntry* Find(std::span<const QueryId> context) const;

  std::unordered_map<QueryId, ContextEntry> table_;
  size_t vocabulary_size_ = 0;
};

}  // namespace sqp

#endif  // SQP_CORE_ADJACENCY_MODEL_H_
