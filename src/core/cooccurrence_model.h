#ifndef SQP_CORE_COOCCURRENCE_MODEL_H_
#define SQP_CORE_COOCCURRENCE_MODEL_H_

#include <unordered_map>

#include "core/prediction_model.h"

namespace sqp {

/// Pair-wise **Co-occurrence** baseline (paper Section V-B, after Huang et
/// al.): given the user's last query q, recommends the queries that most
/// often co-occur with q in the same training session, regardless of order
/// or adjacency. Highest coverage of all methods, but order-blind.
class CooccurrenceModel : public PredictionModel {
 public:
  CooccurrenceModel() = default;

  std::string_view Name() const override { return "Co-occurrence"; }
  Status Train(const TrainingData& data) override;
  Recommendation Recommend(std::span<const QueryId> context,
                           size_t top_n) const override;
  bool Covers(std::span<const QueryId> context) const override;
  double ConditionalProb(std::span<const QueryId> context,
                         QueryId next) const override;
  ModelStats Stats() const override;

 private:
  const ContextEntry* Find(std::span<const QueryId> context) const;

  std::unordered_map<QueryId, ContextEntry> table_;
  size_t vocabulary_size_ = 0;
};

}  // namespace sqp

#endif  // SQP_CORE_COOCCURRENCE_MODEL_H_
