#ifndef SQP_CORE_COMPACT_SNAPSHOT_H_
#define SQP_CORE_COMPACT_SNAPSHOT_H_

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "core/model_snapshot.h"
#include "core/pst.h"
#include "core/serve_kernels.h"

namespace sqp {

class SnapshotIo;  // core/snapshot_io.h: persists / restores the layout

namespace internal {
/// Test hook: when set, the compact walk ranks through the legacy
/// push_back + sort-merge path instead of the dense accumulator. The
/// kernel equivalence suite uses it to pin the dense walk bit-identical
/// to the pre-SIMD reference; production code never touches it.
std::atomic<bool>& ForceSparseMergeForTest();
}  // namespace internal

/// Parameters of the compact serving layout.
struct CompactOptions {
  /// Keep at most this many next-query entries per node (the highest-count
  /// ones; ties by ascending QueryId, i.e. a prefix of the node's
  /// descending-sorted count list), closed under the ancestor relation: a
  /// query kept in a node is also kept in every ancestor (its counts nest,
  /// so it is guaranteed to appear there). The closure means a candidate
  /// kept at the deepest path level that lists it accumulates *all* its
  /// per-level contributions — its served score is exactly the full
  /// model's score. (A query can still be truncated from a *deeper* node
  /// than the ones keeping it, in which case it serves with the deep
  /// contribution understated; the aggregate closure in KeptEntries pins
  /// the full model's own served lists to make that rare.) 0 = keep all.
  /// Serving top-N lists are preserved for N <= top_k on the bench corpora
  /// (tested; tab07_memory_footprint tracks the exact agreement rate in
  /// BENCH_memory.json).
  size_t top_k = 16;
};

/// Width-parameterized read-only views of the compact id pools. `QT` holds
/// query ids, `NT` node ids; the root index uses node id 0 (never a child)
/// as its absent sentinel.
template <typename QT, typename NT>
struct CompactPoolsView {
  std::span<const QT> next_query;
  std::span<const QT> edge_query;
  std::span<const NT> edge_child;
  /// Dense root fan-out index: query id -> depth-1 node, 0 if absent.
  std::span<const NT> root_child_by_query;

  uint64_t flat_bytes() const {
    return next_query.size_bytes() + edge_query.size_bytes() +
           edge_child.size_bytes() + root_child_by_query.size_bytes();
  }
};

/// The compact-layout serving algorithm, factored over *views* of the CSR
/// arrays so one implementation serves both storage variants:
///
///  - CompactSnapshot owns the arrays as vectors (built in memory from a
///    trained ModelSnapshot);
///  - MappedCompactSnapshot (core/snapshot_io.h) points the same spans at
///    a memory-mapped blob — a serving replica boots zero-copy.
///
/// Derived classes own the referenced storage and must keep it alive and
/// byte-stable for their whole lifetime; the mixture state (sigmas,
/// per-component escapes) is small and always owned here. The serving
/// arithmetic is identical through either storage, so a mapped replica is
/// bit-for-bit the snapshot it was written from.
class CompactServingBase : public ServingSnapshot {
 public:
  /// Mixture recommendation over the CSR tree; the same walk and Eq. 4/5
  /// ranking as ModelSnapshot::Recommend, off the quantized counts.
  Recommendation Recommend(std::span<const QueryId> context, size_t top_n,
                           SnapshotScratch* scratch) const override;

  bool Covers(std::span<const QueryId> context) const override;

  /// Longest-suffix matched depth of `context` — the descent without the
  /// ranking. Exposed so bench/hot_path can split one request's cost into
  /// walk vs score+merge.
  size_t MatchedDepth(std::span<const QueryId> context) const;

  /// Pre-sizing hint for the dense-accumulator walk (see ServingSnapshot).
  ScratchSizing ScratchHint() const override;

  size_t num_nodes() const { return total_count_.size(); }
  uint64_t num_entries() const { return next_code_.size(); }
  uint64_t num_edges() const {
    return is_narrow_ ? narrow_view_.edge_query.size()
                      : wide_view_.edge_query.size();
  }
  const CompactOptions& options() const { return options_; }
  const std::vector<double>& sigmas() const { return sigmas_; }

 protected:
  CompactServingBase() = default;

  using NarrowPoolsView = CompactPoolsView<uint16_t, uint16_t>;
  using WidePoolsView = CompactPoolsView<uint32_t, uint32_t>;

  /// Binds the runtime-free walk layer's ModelRef over the views and
  /// computes its bind-time derivatives (escape power tables, the dense
  /// accumulator bound, the scratch sizing hint). Both storage variants
  /// (owned vectors and mapped blob) must call this once their views are
  /// final — all serving then goes through serving::RecommendTopN, the
  /// exact same code path the slim embedded predictor runs.
  void FinalizeDerived();

  /// Exact bytes of the referenced arrays plus the owned mixture state —
  /// the shared ModelStats::memory_bytes math of both storage variants.
  uint64_t ServingBytes() const;

  CompactOptions options_;

  // Mixture state (always owned; a handful of doubles per component).
  MixtureWeighting weighting_ = MixtureWeighting::kGaussianEditDistance;
  std::vector<double> sigmas_;
  std::vector<double> component_escape_;  // default_escape per component

  // Views of the node arrays (see the layout diagram on CompactSnapshot).
  std::span<const uint32_t> next_begin_;   // size num_nodes + 1
  std::span<const uint32_t> child_begin_;  // size num_nodes + 1
  std::span<const uint32_t> total_count_;
  std::span<const uint32_t> start_count_;
  std::span<const uint8_t> count_shift_;
  /// Exactly one of the two mask views is populated: the narrow one when
  /// every component bit fits 16 bits (the default 11-component model),
  /// the wide one otherwise.
  std::span<const uint16_t> mask16_;
  std::span<const Pst::ViewMask> mask64_;

  /// Exactly one of the two pool view sets is populated (see the layout
  /// note on adaptive id widths).
  NarrowPoolsView narrow_view_;
  WidePoolsView wide_view_;
  bool is_narrow_ = false;

  /// Quantized count codes, parallel to the active pools' next_query.
  std::span<const uint16_t> next_code_;

  // ----- bind-time derivatives (FinalizeDerived) -----

  /// The walk layer's raw-pointer view of this model: every Recommend /
  /// Covers / MatchedDepth call funnels through it, so the engine serves
  /// byte-for-byte the arithmetic the slim predictor serves.
  serving::ModelRef model_;
  /// Backing storage of model_.escape_pow (row-major
  /// k x (serving::kEscapePowCap + 1) power tables).
  std::vector<double> escape_pow_;
};

/// A serving-only MVMM variant re-packed for footprint: the shared
/// multi-view PST flattened into CSR-style struct-of-arrays storage (one
/// contiguous pool of next-query entries and one of child edges instead of
/// per-node std::vectors), each node's nexts truncated to the top-K
/// continuations, and 64-bit counts quantized to block-scaled 16-bit
/// fixed-point: each node stores a shift such that its largest count fits
/// 16 bits, entries store `count >> shift`. The quantized probability of an
/// entry is (code << shift) / total.
///
/// Per node the layout costs two CSR offsets, the count total, the escape
/// numerator, the block shift and the component-membership mask — no
/// contexts (the walk re-derives them), no vector headers:
///
///   node arrays (parallel, index = node id, 0 = root):
///     next_begin   u32    CSR offset into the nexts pool    \ 4 B
///     child_begin  u32    CSR offset into the edge pool     | 4 B
///     total_count  u32    Eq. 5 denominator                 | 4 B
///     start_count  u32    Eq. 6 escape numerator            | 4 B
///     count_shift  u8     entry dequantization block shift  | 1 B
///     view_mask    u16/u64  component membership bits       / 2-8 B
///   (19 B/node for the default 11-component model: the mask array is
///   16-bit wide whenever the model has at most 16 components)
///   nexts pool (top-K per node, count-descending; the root's prior is
///   not packed — serving never reads it):
///     next_query  u16/u32  +  next_code u16 (count >> shift) = 4-6 B / entry
///   edge pool (all children, query-ascending):
///     edge_query  u16/u32  +  edge_child u16/i32             = 4-8 B / edge
///   (id widths are adaptive: whenever every query id and node id fits 16
///   bits — true for corpora up to 65k distinct queries / tree nodes — the
///   pools and the dense root index store 16-bit ids)
///
/// versus ~96 B of Pst::Node header plus 16 B per entry in the full tree.
///
/// Equivalence: whenever every count of a node fits 16 bits (count_shift
/// 0 — always true on the bench corpora), dequantization is exact and the
/// serving arithmetic reproduces ModelSnapshot::Recommend bit-for-bit, so
/// rankings differ from the full model only where top-K truncation removed
/// a candidate. Larger corpora lose the shifted-out low bits: scores move
/// by at most 2^-16 relative per entry, and sub-resolution counts clamp to
/// one code step so observed continuations keep a positive probability.
///
/// It is built *from* a trained ModelSnapshot (same node ids, sigmas and
/// weighting) and publishes through the identical RecommenderEngine seam;
/// readers cannot tell which variant answered beyond the truncation.
/// Serving-only: ConditionalProb / MixtureWeights / retraining stay on the
/// full ModelSnapshot, which keeps exact counts.
///
/// The layout is also the unit of persistence: core/snapshot_io writes it
/// to a versioned memory-mappable blob and restores it either by copy
/// (back into this class) or zero-copy (MappedCompactSnapshot over the
/// mapped file).
class CompactSnapshot final : public CompactServingBase {
 public:
  /// Packs `full` into the compact layout. The result carries the same
  /// version tag and serves the same recommendations up to ancestor-closed
  /// top-K truncation and block-scaled 16-bit count rounding.
  static std::shared_ptr<const CompactSnapshot> FromSnapshot(
      const ModelSnapshot& full, const CompactOptions& options = {});

  /// Exact resident bytes of the flat arrays (Table VII scale, via
  /// core/memory_accounting.h).
  ModelStats Stats() const override;

 private:
  friend class SnapshotIo;  // (de)serializes the owned arrays verbatim

  CompactSnapshot() = default;

  /// Points the base-class serving views at the owned vectors. Must be
  /// called after every vector reached its final size/address (the views
  /// hold raw pointers into the vector storage).
  void BindViews();

  /// Width-parameterized owned id pools, mirroring CompactPoolsView.
  template <typename QT, typename NT>
  struct Pools {
    std::vector<QT> next_query;
    std::vector<QT> edge_query;
    std::vector<NT> edge_child;
    std::vector<NT> root_child_by_query;
  };
  using NarrowPools = Pools<uint16_t, uint16_t>;
  using WidePools = Pools<uint32_t, uint32_t>;

  // Owned storage behind the base-class views (same layout, same names
  // minus the own_ prefix).
  std::vector<uint32_t> own_next_begin_;
  std::vector<uint32_t> own_child_begin_;
  std::vector<uint32_t> own_total_count_;
  std::vector<uint32_t> own_start_count_;
  std::vector<uint8_t> own_count_shift_;
  std::vector<uint16_t> own_mask16_;
  std::vector<Pst::ViewMask> own_mask64_;
  NarrowPools narrow_;
  WidePools wide_;
  std::vector<uint16_t> own_next_code_;
};

}  // namespace sqp

#endif  // SQP_CORE_COMPACT_SNAPSHOT_H_
