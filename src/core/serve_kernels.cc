#include "core/serve_kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/serve_kernels_impl.h"

namespace sqp::kernels {
namespace {

#ifdef SQP_HAVE_SSE4_KERNELS
constexpr KernelTable kSse4Table = {
    &sse4::ScoreRunU16,
    &sse4::ScoreRunU32,
};
#endif
#ifdef SQP_HAVE_AVX2_KERNELS
constexpr KernelTable kAvx2Table = {
    &avx2::ScoreRunU16,
    &avx2::ScoreRunU32,
};
#endif

bool CpuSupports(SimdLevel level) {
#if defined(__x86_64__) || defined(__i386__)
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSse4:
      return __builtin_cpu_supports("sse4.1") != 0 &&
             __builtin_cpu_supports("sse4.2") != 0;
    case SimdLevel::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
  }
  return false;
#else
  return level == SimdLevel::kScalar;
#endif
}

bool CompiledIn(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSse4:
#ifdef SQP_HAVE_SSE4_KERNELS
      return true;
#else
      return false;
#endif
    case SimdLevel::kAvx2:
#ifdef SQP_HAVE_AVX2_KERNELS
      return true;
#else
      return false;
#endif
  }
  return false;
}

/// Resolves the startup level: the SQP_SIMD override when set and valid
/// (clamped to host support), otherwise the best supported level.
SimdLevel InitialLevel() {
  const char* env = std::getenv("SQP_SIMD");
  if (env != nullptr && *env != '\0') {
    SimdLevel requested;
    if (!ParseSimdLevel(env, &requested)) {
      std::fprintf(stderr,
                   "sqp: ignoring unknown SQP_SIMD value '%s' "
                   "(expected scalar|sse4|avx2)\n",
                   env);
    } else if (LevelSupported(requested)) {
      return requested;
    } else {
      const SimdLevel best = BestSupportedLevel();
      std::fprintf(stderr,
                   "sqp: SQP_SIMD=%s not supported on this host/build; "
                   "falling back to %s\n",
                   env, SimdLevelName(best));
      return best;
    }
  }
  return BestSupportedLevel();
}

std::atomic<int>& ActiveLevelStorage() {
  static std::atomic<int> storage{-1};
  return storage;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse4:
      return "sse4";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseSimdLevel(const char* name, SimdLevel* out) {
  if (name == nullptr) return false;
  for (int i = 0; i < kNumSimdLevels; ++i) {
    const SimdLevel level = static_cast<SimdLevel>(i);
    if (std::strcmp(name, SimdLevelName(level)) == 0) {
      *out = level;
      return true;
    }
  }
  return false;
}

bool LevelSupported(SimdLevel level) {
  return CompiledIn(level) && CpuSupports(level);
}

SimdLevel BestSupportedLevel() {
  for (int i = kNumSimdLevels - 1; i > 0; --i) {
    const SimdLevel level = static_cast<SimdLevel>(i);
    if (LevelSupported(level)) return level;
  }
  return SimdLevel::kScalar;
}

SimdLevel ActiveLevel() {
  std::atomic<int>& storage = ActiveLevelStorage();
  int value = storage.load(std::memory_order_acquire);
  if (value < 0) {
    // First use: resolve from cpuid + environment. Concurrent first calls
    // compute the same value, so the race is benign.
    const SimdLevel initial = InitialLevel();
    storage.store(static_cast<int>(initial), std::memory_order_release);
    return initial;
  }
  return static_cast<SimdLevel>(value);
}

SimdLevel SetActiveLevel(SimdLevel level) {
  const SimdLevel previous = ActiveLevel();
  const SimdLevel effective =
      LevelSupported(level) ? level : BestSupportedLevel();
  ActiveLevelStorage().store(static_cast<int>(effective),
                             std::memory_order_release);
  return previous;
}

const KernelTable& KernelsFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      break;
    case SimdLevel::kSse4:
#ifdef SQP_HAVE_SSE4_KERNELS
      if (CpuSupports(SimdLevel::kSse4)) return kSse4Table;
#endif
      break;
    case SimdLevel::kAvx2:
#ifdef SQP_HAVE_AVX2_KERNELS
      if (CpuSupports(SimdLevel::kAvx2)) return kAvx2Table;
#endif
      break;
  }
  // The portable reference tier lives in the runtime-free walk layer
  // (core/serving_walk.cc) so the slim predictor shares the exact kernels.
  return serving::ScalarKernels();
}

}  // namespace sqp::kernels
