#ifndef SQP_CORE_HMM_MODEL_H_
#define SQP_CORE_HMM_MODEL_H_

#include <unordered_set>
#include <vector>

#include "core/prediction_model.h"
#include "util/random.h"

namespace sqp {

/// Configuration of the HMM query predictor.
struct HmmOptions {
  /// Number of hidden states ("true user intents, an underlying semantic
  /// concept", paper Section VI).
  size_t num_states = 24;
  /// Baum-Welch iterations.
  size_t em_iterations = 8;
  /// Additive smoothing for the emission/transition re-estimates.
  double smoothing = 1e-3;
  /// Seed of the random initialization (training is deterministic given
  /// the seed).
  uint64_t seed = 2009;
};

/// Hidden Markov Model for sequential query prediction — the paper's
/// future-work direction (Section VI: "more sophisticated Markov models
/// such as HMM ... modeling hidden states that represent true user
/// intent"). Hidden states play the role of latent search intents; queries
/// are emissions. Trained with Baum-Welch over the aggregated sessions
/// (frequency-weighted); prediction runs one normalized forward pass over
/// the context and ranks queries by the one-step predictive distribution
///
///   P(q | context) = sum_{s'} P(s_t = s | context) A[s][s'] B[s'][q].
///
/// The `ext_hmm_future_work` bench evaluates whether this raises the bar
/// over the MVMM, as the paper left open.
class HmmModel : public PredictionModel {
 public:
  explicit HmmModel(HmmOptions options = {});

  std::string_view Name() const override { return "HMM"; }
  Status Train(const TrainingData& data) override;
  Recommendation Recommend(std::span<const QueryId> context,
                           size_t top_n) const override;
  bool Covers(std::span<const QueryId> context) const override;
  double ConditionalProb(std::span<const QueryId> context,
                         QueryId next) const override;
  ModelStats Stats() const override;

  size_t num_states() const { return options_.num_states; }
  /// Per-iteration weighted log-likelihood of the training data (natural
  /// log); must be non-decreasing up to numerical noise (EM invariant).
  const std::vector<double>& log_likelihood_curve() const {
    return log_likelihood_;
  }

 private:
  /// Normalized forward pass; returns the state distribution after
  /// consuming `context` (uniform-smoothed for unseen queries).
  std::vector<double> StateDistribution(std::span<const QueryId> context) const;

  /// Full one-step predictive distribution over the vocabulary.
  std::vector<double> PredictiveDistribution(
      std::span<const QueryId> context) const;

  double Emission(size_t state, QueryId query) const;

  HmmOptions options_;
  size_t vocabulary_size_ = 0;
  std::vector<double> initial_;     // [state]
  std::vector<double> transition_;  // [state * num_states + state']
  std::vector<double> emission_;    // [state * vocabulary + query]
  std::unordered_set<QueryId> seen_queries_;
  std::vector<double> log_likelihood_;
  bool trained_ = false;
};

}  // namespace sqp

#endif  // SQP_CORE_HMM_MODEL_H_
