#ifndef SQP_CORE_MVMM_MODEL_H_
#define SQP_CORE_MVMM_MODEL_H_

#include <memory>
#include <vector>

#include "core/prediction_model.h"
#include "core/vmm_model.h"

namespace sqp {

/// How MVMM weighs its components for an online context. The paper uses
/// the Gaussian-of-edit-distance scheme (Eq. 4); the alternatives exist for
/// ablation studies.
enum class MixtureWeighting {
  kGaussianEditDistance,  // paper Eq. 4, sigmas learned by Newton iteration
  kUniform,               // every component weighs the same
  kLongestMatch,          // all weight on the deepest-matching component(s)
};

/// Configuration of the Mixture Variable Memory Markov model (paper
/// Section IV-C). The default component set mirrors the paper's experiment:
/// 11 VMMs with epsilon in {0.0, 0.01, ..., 0.1}.
struct MvmmOptions {
  /// Component VMM configurations. Empty = the paper's 11-epsilon default.
  std::vector<VmmOptions> components;

  /// Component weighting scheme (ablation switch; the paper's is default).
  MixtureWeighting weighting = MixtureWeighting::kGaussianEditDistance;

  /// Depth bound applied to default components (0 = unbounded).
  size_t default_max_depth = 0;

  /// Number of training sequences (most frequent first) used to fit the
  /// per-component Gaussian widths sigma_D.
  size_t weight_sample_size = 2000;

  /// Newton iterations for the sigma fit (Eq. 10).
  size_t max_newton_iterations = 25;

  /// Lower clamp on sigma (the Gaussian degenerates below this).
  double min_sigma = 0.05;

  /// Initial sigma for every component.
  double initial_sigma = 1.0;

  /// Train the K component VMMs on worker threads (paper Section V-F.1:
  /// "each of the K models can be independently trained in parallel").
  /// 0 = sequential; otherwise the number of worker threads.
  size_t training_threads = 0;

  /// Returns the paper's default component set.
  static std::vector<VmmOptions> DefaultComponents(size_t max_depth);
};

/// Diagnostics from the sigma (mixture-weight) optimization.
struct MvmmFitReport {
  size_t iterations = 0;
  double initial_objective = 0.0;
  double final_objective = 0.0;
  bool used_newton = false;  // false = fell back to gradient ascent only
};

/// Mixture Variable Memory Markov model: a linearly weighted combination of
/// VMM components whose weights adapt to the online context. For a context
/// s, component D contributes weight proportional to a Gaussian of the edit
/// distance between s and the state s_D the component matched (Eq. 4); the
/// Gaussian widths are learned offline by Newton iteration on the KL
/// redundancy objective (Eq. 7-10).
class MvmmModel : public PredictionModel {
 public:
  explicit MvmmModel(MvmmOptions options = {});

  std::string_view Name() const override { return "MVMM"; }
  Status Train(const TrainingData& data) override;
  Recommendation Recommend(std::span<const QueryId> context,
                           size_t top_n) const override;
  bool Covers(std::span<const QueryId> context) const override;
  double ConditionalProb(std::span<const QueryId> context,
                         QueryId next) const override;

  /// Stats() reports the *merged* PST accounting of the paper's Table VII:
  /// components share structurally identical nodes, and each merged node
  /// carries a small per-component membership tag.
  ModelStats Stats() const override;

  /// Per-context mixture weights (normalized); exposed for tests/benches.
  std::vector<double> MixtureWeights(std::span<const QueryId> context) const;

  const std::vector<std::unique_ptr<VmmModel>>& components() const {
    return components_;
  }
  const std::vector<double>& sigmas() const { return sigmas_; }
  const MvmmFitReport& fit_report() const { return fit_report_; }
  const MvmmOptions& options() const { return options_; }

 private:
  struct WeightSample {
    double weight = 0.0;                 // P(X_T), normalized
    std::vector<double> edit_distance;   // d_D(X_T) per component
    std::vector<double> sequence_prob;   // \hat{P}_D(X_T) per component
  };

  void FitSigmas(const std::vector<AggregatedSession>& sessions);
  double Objective(const std::vector<WeightSample>& samples,
                   const std::vector<double>& sigmas) const;
  std::vector<double> Gradient(const std::vector<WeightSample>& samples,
                               const std::vector<double>& sigmas) const;

  /// Unnormalized component weights for a context under the configured
  /// weighting scheme; `matches` holds the per-component VmmMatch results.
  std::vector<double> RawWeights(std::span<const QueryId> context,
                                 const std::vector<VmmMatch>& matches) const;

  MvmmOptions options_;
  std::vector<std::unique_ptr<VmmModel>> components_;
  std::vector<double> sigmas_;
  MvmmFitReport fit_report_;
  size_t vocabulary_size_ = 0;
  bool trained_ = false;
};

}  // namespace sqp

#endif  // SQP_CORE_MVMM_MODEL_H_
