#ifndef SQP_CORE_MVMM_MODEL_H_
#define SQP_CORE_MVMM_MODEL_H_

#include <memory>
#include <vector>

#include "core/model_snapshot.h"
#include "core/prediction_model.h"
#include "core/vmm_model.h"

namespace sqp {

/// Mixture Variable Memory Markov model: a linearly weighted combination of
/// VMM components whose weights adapt to the online context. For a context
/// s, component D contributes weight proportional to a Gaussian of the edit
/// distance between s and the state s_D the component matched (Eq. 4); the
/// Gaussian widths are learned offline by Newton iteration on the KL
/// redundancy objective (Eq. 7-10).
///
/// Training builds ONE maximal shared tree (Pst::BuildShared) and derives
/// every component as a view of that tree; the trained state lives in an
/// immutable ModelSnapshot (see core/model_snapshot.h), which online
/// prediction walks once per query with per-thread scratch — the same
/// snapshot type the serving layer (src/serve/) swaps atomically. Beyond
/// Pst::kMaxViews components a standalone per-component fallback trains
/// each VMM separately.
class MvmmModel : public PredictionModel {
 public:
  explicit MvmmModel(MvmmOptions options = {});

  std::string_view Name() const override { return "MVMM"; }
  Status Train(const TrainingData& data) override;
  Recommendation Recommend(std::span<const QueryId> context,
                           size_t top_n) const override;
  bool Covers(std::span<const QueryId> context) const override;
  double ConditionalProb(std::span<const QueryId> context,
                         QueryId next) const override;

  /// Stats() reports the *merged* PST accounting of the paper's Table VII:
  /// the actual shared structure — nodes stored once, plus the per-node
  /// component-membership masks.
  ModelStats Stats() const override;

  /// Per-context mixture weights (normalized); exposed for tests/benches.
  std::vector<double> MixtureWeights(std::span<const QueryId> context) const;

  const std::vector<std::unique_ptr<VmmModel>>& components() const {
    return components_;
  }
  const std::vector<double>& sigmas() const { return sigmas_; }
  const MvmmFitReport& fit_report() const { return fit_report_; }
  const MvmmOptions& options() const { return options_; }
  /// The immutable trained serving state (null when the component count
  /// exceeds Pst::kMaxViews and components were trained standalone). The
  /// serving layer publishes exactly this object to its reader threads.
  const std::shared_ptr<const ModelSnapshot>& snapshot() const {
    return snapshot_;
  }
  /// The shared multi-view tree (null when the component count exceeds
  /// Pst::kMaxViews and components were trained standalone). Derived from
  /// the snapshot — there is no separate tree state to keep in sync.
  std::shared_ptr<const Pst> shared_pst() const {
    return snapshot_ ? snapshot_->pst() : nullptr;
  }

 private:
  /// Standalone-fallback helpers (component count beyond Pst::kMaxViews;
  /// the shared-tree path lives in ModelSnapshot).
  void FitSigmas(const std::vector<AggregatedSession>& sessions);
  void BuildWeightSample(const AggregatedSession& session,
                         internal::WeightSample* sample) const;
  std::vector<double> RawWeights(size_t context_len,
                                 const std::vector<size_t>& matched) const;

  MvmmOptions options_;
  std::vector<std::unique_ptr<VmmModel>> components_;
  std::shared_ptr<const ModelSnapshot> snapshot_;
  std::vector<double> sigmas_;
  MvmmFitReport fit_report_;
  size_t vocabulary_size_ = 0;
  bool trained_ = false;
};

}  // namespace sqp

#endif  // SQP_CORE_MVMM_MODEL_H_
