#ifndef SQP_CORE_MVMM_MODEL_H_
#define SQP_CORE_MVMM_MODEL_H_

#include <memory>
#include <vector>

#include "core/prediction_model.h"
#include "core/vmm_model.h"

namespace sqp {

/// How MVMM weighs its components for an online context. The paper uses
/// the Gaussian-of-edit-distance scheme (Eq. 4); the alternatives exist for
/// ablation studies.
enum class MixtureWeighting {
  kGaussianEditDistance,  // paper Eq. 4, sigmas learned by Newton iteration
  kUniform,               // every component weighs the same
  kLongestMatch,          // all weight on the deepest-matching component(s)
};

/// Configuration of the Mixture Variable Memory Markov model (paper
/// Section IV-C). The default component set mirrors the paper's experiment:
/// 11 VMMs with epsilon in {0.0, 0.01, ..., 0.1}.
struct MvmmOptions {
  /// Component VMM configurations. Empty = the paper's 11-epsilon default.
  std::vector<VmmOptions> components;

  /// Component weighting scheme (ablation switch; the paper's is default).
  MixtureWeighting weighting = MixtureWeighting::kGaussianEditDistance;

  /// Depth bound applied to default components (0 = unbounded).
  size_t default_max_depth = 0;

  /// Number of training sequences (most frequent first) used to fit the
  /// per-component Gaussian widths sigma_D.
  size_t weight_sample_size = 2000;

  /// Newton iterations for the sigma fit (Eq. 10).
  size_t max_newton_iterations = 25;

  /// The sigma fit stops once an accepted step improves the objective by
  /// less than this relative amount — Newton converges in a handful of
  /// iterations and the remaining budget buys only noise-level gains.
  double convergence_tolerance = 1e-9;

  /// Lower clamp on sigma (the Gaussian degenerates below this).
  double min_sigma = 0.05;

  /// Initial sigma for every component.
  double initial_sigma = 1.0;

  /// Worker threads for training (paper Section V-F.1). With at most
  /// Pst::kMaxViews components the trees come from one shared single-pass
  /// build and the threads shard the sigma-fit sample sweep; beyond that
  /// the standalone fallback shards per-component training itself.
  /// 0 = sequential. Results are identical either way.
  size_t training_threads = 0;

  /// Returns the paper's default component set.
  static std::vector<VmmOptions> DefaultComponents(size_t max_depth);
};

/// Diagnostics from the sigma (mixture-weight) optimization.
struct MvmmFitReport {
  size_t iterations = 0;
  double initial_objective = 0.0;
  double final_objective = 0.0;
  bool used_newton = false;  // false = fell back to gradient ascent only
};

/// Mixture Variable Memory Markov model: a linearly weighted combination of
/// VMM components whose weights adapt to the online context. For a context
/// s, component D contributes weight proportional to a Gaussian of the edit
/// distance between s and the state s_D the component matched (Eq. 4); the
/// Gaussian widths are learned offline by Newton iteration on the KL
/// redundancy objective (Eq. 7-10).
///
/// Training builds ONE maximal shared tree (Pst::BuildShared) and derives
/// every component as a pruned view of it; online prediction walks that
/// tree once and serves all components off the recorded match path, since
/// each component's matched state is by construction a node on that path.
class MvmmModel : public PredictionModel {
 public:
  explicit MvmmModel(MvmmOptions options = {});

  std::string_view Name() const override { return "MVMM"; }
  Status Train(const TrainingData& data) override;
  Recommendation Recommend(std::span<const QueryId> context,
                           size_t top_n) const override;
  bool Covers(std::span<const QueryId> context) const override;
  double ConditionalProb(std::span<const QueryId> context,
                         QueryId next) const override;

  /// Stats() reports the *merged* PST accounting of the paper's Table VII:
  /// the actual shared structure — nodes stored once, plus the per-node
  /// component-membership masks.
  ModelStats Stats() const override;

  /// Per-context mixture weights (normalized); exposed for tests/benches.
  std::vector<double> MixtureWeights(std::span<const QueryId> context) const;

  const std::vector<std::unique_ptr<VmmModel>>& components() const {
    return components_;
  }
  const std::vector<double>& sigmas() const { return sigmas_; }
  const MvmmFitReport& fit_report() const { return fit_report_; }
  const MvmmOptions& options() const { return options_; }
  /// The shared multi-view tree (null when the component count exceeds
  /// Pst::kMaxViews and components were trained standalone).
  const std::shared_ptr<const Pst>& shared_pst() const { return shared_pst_; }

 private:
  struct WeightSample {
    double weight = 0.0;                 // P(X_T), normalized
    std::vector<double> edit_distance;   // d_D(X_T) per component
    std::vector<double> sequence_prob;   // \hat{P}_D(X_T) per component
  };

  void FitSigmas(const std::vector<AggregatedSession>& sessions);
  void BuildWeightSample(const AggregatedSession& session,
                         WeightSample* sample) const;
  /// Both evaluators exploit that edit distances are integral (a count of
  /// dropped prefix queries): the Gaussian terms take only
  /// (components x (max_d + 1)) distinct values per sigma vector, so each
  /// pass runs off a small lookup table instead of one exp per
  /// (sample, component).
  double Objective(const std::vector<WeightSample>& samples,
                   const std::vector<double>& sigmas, size_t max_d) const;
  /// Fused analytic gradient and analytic Hessian (row-major k x k) in a
  /// single pass over the samples — replaces the former 2k
  /// finite-difference gradient sweeps per Newton iteration.
  void FitDerivatives(const std::vector<WeightSample>& samples,
                      const std::vector<double>& sigmas, size_t max_d,
                      std::vector<double>* gradient,
                      std::vector<double>* hessian) const;

  /// One shared-tree walk: fills `path` with the matched chain and
  /// `matched` with each component's matched length (the deepest path node
  /// carrying the component's view bit). Returns the full-tree match depth.
  size_t SharedMatchDepths(std::span<const QueryId> context,
                           std::vector<int32_t>* path,
                           std::vector<size_t>* matched) const;

  /// Unnormalized component weights under the configured weighting scheme,
  /// from the per-component matched lengths (the matched state of component
  /// c is the trailing matched[c] queries of the context, so its edit
  /// distance to the context is exactly context_len - matched[c]).
  std::vector<double> RawWeights(size_t context_len,
                                 const std::vector<size_t>& matched) const;

  /// Escape weight of component c for a state matched at `matched` of
  /// `context_len` queries (Eq. 5-6, as VmmModel::Match).
  double EscapeWeight(const Pst::Node& state, size_t context_len,
                      size_t matched, size_t component) const;

  MvmmOptions options_;
  std::vector<std::unique_ptr<VmmModel>> components_;
  std::shared_ptr<const Pst> shared_pst_;
  std::vector<double> sigmas_;
  MvmmFitReport fit_report_;
  size_t vocabulary_size_ = 0;
  bool trained_ = false;
};

}  // namespace sqp

#endif  // SQP_CORE_MVMM_MODEL_H_
