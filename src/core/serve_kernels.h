#ifndef SQP_CORE_SERVE_KERNELS_H_
#define SQP_CORE_SERVE_KERNELS_H_

/// SIMD-dispatched scoring kernels for the compact serving walk.
///
/// The per-request hot path of the compact snapshot is one loop per matched
/// path level: dequantize every entry of the node's CSR run
/// (`code << shift`), scale it by the level weight, and merge the score
/// into the per-query total. This header factors that loop into
/// width-parameterized kernels (16- and 32-bit query-id pools) with three
/// implementations selected once at startup by cpuid runtime dispatch:
///
///   scalar  — portable reference; always available, bit-exact oracle
///   sse4    — SSE4.1 widening + SSE2 double math, 4 entries per step
///   avx2    — AVX2 widening + 256-bit double math, 8 entries per step
///
/// Every level computes the same IEEE operations per entry (one widening
/// u16 -> double conversion and one double multiply), so the kernels are
/// bit-identical to each other and to the pre-SIMD serving arithmetic —
/// property-tested in tests/core/serve_kernels_test.cc and
/// tests/serve/kernel_equivalence_test.cc.
///
/// Dispatch: the active level is resolved on first use from cpuid
/// (best supported wins) with an `SQP_SIMD=scalar|sse4|avx2` environment
/// override for testing/bench forcing; requesting an unsupported level
/// clamps to the best the host can run. Tests and benches can re-pin the
/// level at runtime with SetActiveLevel.
///
/// The DenseAccumulator replaces the old push_back + sort-merge ranking
/// scratch: an O(vocabulary) score array whose validity is tracked by a
/// per-slot generation stamp, so "resetting" between requests is one
/// epoch increment instead of a memset, and the touched-query list keeps
/// result collection O(distinct candidates).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/serving_walk.h"

namespace sqp::kernels {

/// The kernel vocabulary itself (accumulator view, function-pointer types,
/// dispatch table, scalar reference kernels, prefetch) lives in the
/// runtime-free walk layer (core/serving_walk.h) so the slim embedded
/// predictor can serve without this header. This header adds what only
/// the engine runtime needs: cpuid dispatch over the SIMD tiers and the
/// vector-backed accumulator storage behind SnapshotScratch.
using DenseAccumulator = serving::DenseAccumulator;
using KernelTable = serving::KernelTable;
using ScoreRunU16Fn = serving::ScoreRunU16Fn;
using ScoreRunU32Fn = serving::ScoreRunU32Fn;
using serving::PrefetchRead;
using serving::ScoreRun;

/// Instruction-set tiers of the scoring kernels, ascending capability.
enum class SimdLevel : int {
  kScalar = 0,
  kSse4 = 1,
  kAvx2 = 2,
};

inline constexpr int kNumSimdLevels = 3;

/// Stable lowercase name ("scalar" / "sse4" / "avx2"), as accepted by the
/// SQP_SIMD environment override.
const char* SimdLevelName(SimdLevel level);

/// Parses a SimdLevelName spelling. Returns false (out untouched) on an
/// unknown name.
bool ParseSimdLevel(const char* name, SimdLevel* out);

/// True when `level` is both compiled into this binary and runnable on
/// this CPU (cpuid-checked once).
bool LevelSupported(SimdLevel level);

/// The most capable supported level (kScalar at worst).
SimdLevel BestSupportedLevel();

/// The level serving currently dispatches to. Resolved on first call:
/// SQP_SIMD override if set (clamped to supported), else
/// BestSupportedLevel.
SimdLevel ActiveLevel();

/// Re-pins the active level (clamped to supported); returns the previous
/// active level. Thread-safe, but intended for tests and benches — serving
/// threads pick up the change on their next request.
SimdLevel SetActiveLevel(SimdLevel level);

/// Vector-backed storage behind a serving::DenseAccumulator view: the
/// engine-side owner of the epoch-stamped dense score array (one per
/// SnapshotScratch). The walk layer itself only ever sees the raw view,
/// so the same scoring code serves the slim predictor's malloc'ed arena.
struct AccumulatorStorage {
  std::vector<double> score;
  std::vector<uint32_t> stamp;
  std::vector<uint32_t> touched;
  uint32_t epoch = 0;

  /// Grows the slot arrays to `bound` slots (never shrinks). New slots
  /// carry stamp 0, which is never a live epoch.
  void Reserve(size_t bound) {
    if (score.size() < bound) {
      score.resize(bound, 0.0);
      stamp.resize(bound, 0u);
      touched.resize(bound, 0u);
    }
  }

  /// Starts a new accumulation generation over `bound` query slots and
  /// returns the view to accumulate through. The epoch lives here (the
  /// view is per-request); the wraparound re-zero happens inside the
  /// view's BeginGeneration. (Regression-tested; a serving thread reaches
  /// the wraparound once per 4 billion requests.)
  serving::DenseAccumulator BeginGeneration(size_t bound) {
    Reserve(bound);
    serving::DenseAccumulator acc{score.data(),   stamp.data(),
                                  touched.data(), score.size(),
                                  /*touched_count=*/0, epoch};
    acc.BeginGeneration();
    epoch = acc.epoch;
    return acc;
  }
};

/// The kernel table of `level`; unsupported levels fall back to the best
/// supported table (never null function pointers).
const KernelTable& KernelsFor(SimdLevel level);

/// The table serving should use right now.
inline const KernelTable& ActiveKernels() { return KernelsFor(ActiveLevel()); }

}  // namespace sqp::kernels

#endif  // SQP_CORE_SERVE_KERNELS_H_
