#ifndef SQP_CORE_SERVE_KERNELS_H_
#define SQP_CORE_SERVE_KERNELS_H_

/// SIMD-dispatched scoring kernels for the compact serving walk.
///
/// The per-request hot path of the compact snapshot is one loop per matched
/// path level: dequantize every entry of the node's CSR run
/// (`code << shift`), scale it by the level weight, and merge the score
/// into the per-query total. This header factors that loop into
/// width-parameterized kernels (16- and 32-bit query-id pools) with three
/// implementations selected once at startup by cpuid runtime dispatch:
///
///   scalar  — portable reference; always available, bit-exact oracle
///   sse4    — SSE4.1 widening + SSE2 double math, 4 entries per step
///   avx2    — AVX2 widening + 256-bit double math, 8 entries per step
///
/// Every level computes the same IEEE operations per entry (one widening
/// u16 -> double conversion and one double multiply), so the kernels are
/// bit-identical to each other and to the pre-SIMD serving arithmetic —
/// property-tested in tests/core/serve_kernels_test.cc and
/// tests/serve/kernel_equivalence_test.cc.
///
/// Dispatch: the active level is resolved on first use from cpuid
/// (best supported wins) with an `SQP_SIMD=scalar|sse4|avx2` environment
/// override for testing/bench forcing; requesting an unsupported level
/// clamps to the best the host can run. Tests and benches can re-pin the
/// level at runtime with SetActiveLevel.
///
/// The DenseAccumulator replaces the old push_back + sort-merge ranking
/// scratch: an O(vocabulary) score array whose validity is tracked by a
/// per-slot generation stamp, so "resetting" between requests is one
/// epoch increment instead of a memset, and the touched-query list keeps
/// result collection O(distinct candidates).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sqp::kernels {

/// Instruction-set tiers of the scoring kernels, ascending capability.
enum class SimdLevel : int {
  kScalar = 0,
  kSse4 = 1,
  kAvx2 = 2,
};

inline constexpr int kNumSimdLevels = 3;

/// Stable lowercase name ("scalar" / "sse4" / "avx2"), as accepted by the
/// SQP_SIMD environment override.
const char* SimdLevelName(SimdLevel level);

/// Parses a SimdLevelName spelling. Returns false (out untouched) on an
/// unknown name.
bool ParseSimdLevel(const char* name, SimdLevel* out);

/// True when `level` is both compiled into this binary and runnable on
/// this CPU (cpuid-checked once).
bool LevelSupported(SimdLevel level);

/// The most capable supported level (kScalar at worst).
SimdLevel BestSupportedLevel();

/// The level serving currently dispatches to. Resolved on first call:
/// SQP_SIMD override if set (clamped to supported), else
/// BestSupportedLevel.
SimdLevel ActiveLevel();

/// Re-pins the active level (clamped to supported); returns the previous
/// active level. Thread-safe, but intended for tests and benches — serving
/// threads pick up the change on their next request.
SimdLevel SetActiveLevel(SimdLevel level);

/// Epoch-stamped dense per-query score accumulator. score[q] is valid iff
/// stamp[q] == epoch; BeginGeneration invalidates every slot in O(1) by
/// bumping the epoch (with an exact O(n) re-zero only on the ~4-billion
/// generation wraparound). `touched` lists the queries written this
/// generation, in first-touch order.
struct DenseAccumulator {
  std::vector<double> score;
  std::vector<uint32_t> stamp;
  std::vector<uint32_t> touched;
  uint32_t epoch = 0;

  /// Grows the slot arrays to `bound` slots (never shrinks). New slots
  /// carry stamp 0, which is never a live epoch.
  void Reserve(size_t bound) {
    if (score.size() < bound) {
      score.resize(bound, 0.0);
      stamp.resize(bound, 0u);
    }
  }

  /// Starts a new accumulation generation over `bound` query slots.
  void BeginGeneration(size_t bound) {
    Reserve(bound);
    if (++epoch == 0) {
      // Wrapped: stamps from ~2^32 generations ago could alias the new
      // epoch, so pay one exact reset. (Regression-tested; a serving
      // thread reaches this once per 4 billion requests.)
      std::fill(stamp.begin(), stamp.end(), 0u);
      epoch = 1;
    }
    touched.clear();
  }

  /// Merges one contribution. First touch of a generation *assigns* (no
  /// read of the stale score), later touches add — accumulation order is
  /// the call order, which the serving walk keeps level-major.
  inline void Add(uint32_t query, double value) {
    if (stamp[query] != epoch) {
      stamp[query] = epoch;
      score[query] = value;
      touched.push_back(query);
    } else {
      score[query] += value;
    }
  }
};

/// Scores one CSR run: for each entry i, merges
/// `scale * static_cast<double>(codes[i])` into acc->Add(queries[i], ...).
/// The caller folds the node's block shift into `scale` (exactly, as a
/// power-of-two scaling), so kernels never see the shift.
using ScoreRunU16Fn = void (*)(const uint16_t* queries,
                               const uint16_t* codes, size_t n, double scale,
                               DenseAccumulator* acc);
using ScoreRunU32Fn = void (*)(const uint32_t* queries,
                               const uint16_t* codes, size_t n, double scale,
                               DenseAccumulator* acc);

/// The dispatch table of one SimdLevel: one scoring kernel per id width.
struct KernelTable {
  ScoreRunU16Fn score_run_u16 = nullptr;
  ScoreRunU32Fn score_run_u32 = nullptr;
};

/// The kernel table of `level`; unsupported levels fall back to the best
/// supported table (never null function pointers).
const KernelTable& KernelsFor(SimdLevel level);

/// The table serving should use right now.
inline const KernelTable& ActiveKernels() { return KernelsFor(ActiveLevel()); }

/// Width-overloaded spellings so templated callers pick the right slot.
inline void ScoreRun(const KernelTable& table, const uint16_t* queries,
                     const uint16_t* codes, size_t n, double scale,
                     DenseAccumulator* acc) {
  table.score_run_u16(queries, codes, n, scale, acc);
}
inline void ScoreRun(const KernelTable& table, const uint32_t* queries,
                     const uint16_t* codes, size_t n, double scale,
                     DenseAccumulator* acc) {
  table.score_run_u32(queries, codes, n, scale, acc);
}

/// Best-effort read prefetch of the cache line at `address` (no-op where
/// the builtin is unavailable). The walk uses it to pull the next path
/// level's CSR slices in while the current level is being scored.
inline void PrefetchRead(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/3);
#else
  (void)address;
#endif
}

}  // namespace sqp::kernels

#endif  // SQP_CORE_SERVE_KERNELS_H_
