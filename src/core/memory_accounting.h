#ifndef SQP_CORE_MEMORY_ACCOUNTING_H_
#define SQP_CORE_MEMORY_ACCOUNTING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sqp {

/// Shared footprint accounting for ModelStats::memory_bytes (paper
/// Table VII). Every model computes its resident size through these helpers
/// so full and compact serving variants — and the hash-table baselines —
/// are charged on one consistent scale instead of ad-hoc per-model
/// arithmetic.

/// Per-slot bookkeeping overhead charged for node-based hash tables
/// (bucket pointer + hash next-link on the libstdc++ layout). The exact
/// value matters less than every table-based model using the same one.
inline constexpr uint64_t kHashSlotOverheadBytes = 16;

/// Flat-layout footprint of one PST node: the Pst::Node header plus its
/// context ids, next-query count entries and child edges. Set
/// `with_view_mask` to add the per-node membership tag of a shared
/// multi-view tree (Pst::ViewMask).
uint64_t PstNodeBytes(size_t context_length, size_t num_nexts,
                      size_t num_children, bool with_view_mask);

/// Footprint of a ContextEntry-keyed hash table: `num_states` slots (entry
/// header + hash-slot overhead), `num_key_ids` stored context query ids
/// across all keys, and `num_entries` next-query count entries.
uint64_t ContextTableBytes(uint64_t num_states, uint64_t num_entries,
                           uint64_t num_key_ids);

/// Exact resident bytes of one flat array (as used by the compact
/// serving-snapshot layout: size, not capacity, since compact pools are
/// shrunk to fit).
template <typename T>
uint64_t FlatBytes(const std::vector<T>& v) {
  return static_cast<uint64_t>(v.size()) * sizeof(T);
}

}  // namespace sqp

#endif  // SQP_CORE_MEMORY_ACCOUNTING_H_
