#ifndef SQP_CORE_CLICK_CLUSTER_MODEL_H_
#define SQP_CORE_CLICK_CLUSTER_MODEL_H_

#include <unordered_map>
#include <vector>

#include "core/prediction_model.h"

namespace sqp {

/// Configuration of the click-through cluster baseline.
struct ClickClusterOptions {
  /// Minimum Jaccard similarity of two queries' clicked-URL sets for them
  /// to be joined into one cluster. High enough that ambiguous queries
  /// (clicking URLs of several topics) do not bridge otherwise-unrelated
  /// clusters into giant components.
  double min_jaccard = 0.5;
  /// Queries with fewer clicks than this never join a cluster.
  size_t min_clicks = 2;
};

/// Click-through **cluster-based** baseline (paper Section II, after
/// Beeferman & Berger / Wen et al. / Baeza-Yates et al.): two queries are
/// related if they share many clicked URLs; related queries are grouped
/// into clusters and recommended for each other.
///
/// The paper's point about this family — reproduced by the
/// `ext_cluster_baseline` bench — is that click clusters find *similar*
/// queries, which suits query substitution, while query recommendation
/// wants the query a user asks *next*; so this model scores well below the
/// session-based methods on next-query prediction.
///
/// Requires TrainingData.records and TrainingData.dictionary.
class ClickClusterModel : public PredictionModel {
 public:
  explicit ClickClusterModel(ClickClusterOptions options = {});

  std::string_view Name() const override { return "Click-cluster"; }
  Status Train(const TrainingData& data) override;
  Recommendation Recommend(std::span<const QueryId> context,
                           size_t top_n) const override;
  bool Covers(std::span<const QueryId> context) const override;
  double ConditionalProb(std::span<const QueryId> context,
                         QueryId next) const override;
  ModelStats Stats() const override;

  /// Number of non-singleton clusters found (for tests/benches).
  size_t num_clusters() const { return num_clusters_; }
  /// Cluster id of a query, or -1 if unclustered.
  int32_t ClusterOf(QueryId query) const;

 private:
  struct Member {
    QueryId query = kInvalidQueryId;
    uint64_t clicks = 0;  // popularity inside the cluster
  };

  ClickClusterOptions options_;
  // query -> cluster id; clusters_ lists members sorted by clicks desc.
  std::unordered_map<QueryId, int32_t> cluster_of_;
  std::vector<std::vector<Member>> clusters_;
  size_t num_clusters_ = 0;
  size_t vocabulary_size_ = 0;
};

}  // namespace sqp

#endif  // SQP_CORE_CLICK_CLUSTER_MODEL_H_
