#include "core/prediction_model.h"

#include <algorithm>

namespace sqp {

bool PredictionModel::Covers(std::span<const QueryId> context) const {
  return Recommend(context, 1).covered;
}

namespace internal {

double SmoothedProb(const std::vector<NextQueryCount>& nexts,
                    uint64_t total_count, size_t vocabulary_size,
                    QueryId next) {
  SQP_CHECK(vocabulary_size > 0);
  const double v = static_cast<double>(vocabulary_size);
  if (total_count == 0 || nexts.empty()) return 1.0 / v;
  const size_t observed = nexts.size();
  const double unobserved =
      observed >= vocabulary_size
          ? 0.0
          : static_cast<double>(vocabulary_size - observed);
  const double denom = static_cast<double>(total_count) + unobserved / v;
  for (const NextQueryCount& nc : nexts) {
    if (nc.query == next) return static_cast<double>(nc.count) / denom;
  }
  return (1.0 / v) / denom;
}

void FillTopN(const std::vector<NextQueryCount>& nexts, uint64_t total_count,
              size_t top_n, Recommendation* rec) {
  if (nexts.empty() || total_count == 0) return;
  const size_t take = std::min(top_n, nexts.size());
  rec->queries.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    rec->queries.push_back(ScoredQuery{
        nexts[i].query,
        static_cast<double>(nexts[i].count) / static_cast<double>(total_count)});
  }
}

Status ValidateTrainingData(const TrainingData& data) {
  if (data.sessions == nullptr) {
    return Status::InvalidArgument("TrainingData.sessions is null");
  }
  if (data.vocabulary_size == 0) {
    return Status::InvalidArgument("TrainingData.vocabulary_size is 0");
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace sqp
