// SSE4 scoring kernels. This translation unit is compiled with -msse4.2
// (see the CMakeLists SIMD block) and is only ever entered through the
// cpuid-checked dispatch table in serve_kernels.cc.

#include "core/serve_kernels_impl.h"

#ifdef SQP_HAVE_SSE4_KERNELS

#include <smmintrin.h>

namespace sqp::kernels::sse4 {
namespace {

/// Four entries per step: widen 4 u16 codes to i32 (SSE4.1 pmovzxwd),
/// convert pairwise to double, multiply by the broadcast scale, then merge
/// the lane products through the epoch-stamped accumulator in index order.
/// Per entry this is exactly one u16 -> double widening and one double
/// multiply — the same IEEE operations as the scalar kernel, so the merged
/// scores are bit-identical.
template <typename QT>
inline void ScoreRunSse4(const QT* queries, const uint16_t* codes, size_t n,
                         double scale, DenseAccumulator* acc) {
  const __m128d vscale = _mm_set1_pd(scale);
  alignas(16) double lane[4];
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i c16 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(codes + i));
    const __m128i c32 = _mm_cvtepu16_epi32(c16);
    const __m128d lo = _mm_cvtepi32_pd(c32);
    const __m128d hi = _mm_cvtepi32_pd(_mm_srli_si128(c32, 8));
    _mm_store_pd(lane, _mm_mul_pd(lo, vscale));
    _mm_store_pd(lane + 2, _mm_mul_pd(hi, vscale));
    acc->Add(queries[i + 0], lane[0]);
    acc->Add(queries[i + 1], lane[1]);
    acc->Add(queries[i + 2], lane[2]);
    acc->Add(queries[i + 3], lane[3]);
  }
  for (; i < n; ++i) {
    acc->Add(queries[i], scale * static_cast<double>(codes[i]));
  }
}

}  // namespace

void ScoreRunU16(const uint16_t* queries, const uint16_t* codes, size_t n,
                 double scale, DenseAccumulator* acc) {
  ScoreRunSse4(queries, codes, n, scale, acc);
}

void ScoreRunU32(const uint32_t* queries, const uint16_t* codes, size_t n,
                 double scale, DenseAccumulator* acc) {
  ScoreRunSse4(queries, codes, n, scale, acc);
}

}  // namespace sqp::kernels::sse4

#endif  // SQP_HAVE_SSE4_KERNELS
