#include "core/click_cluster_model.h"

#include <algorithm>

#include "util/hash.h"

namespace sqp {
namespace {

/// Plain union-find over dense query ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<int32_t>(i);
  }
  int32_t Find(int32_t x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(int32_t a, int32_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[static_cast<size_t>(b)] = a;
  }

 private:
  std::vector<int32_t> parent_;
};

double Jaccard(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t both = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++both;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t either = a.size() + b.size() - both;
  return either == 0 ? 0.0
                     : static_cast<double>(both) / static_cast<double>(either);
}

}  // namespace

ClickClusterModel::ClickClusterModel(ClickClusterOptions options)
    : options_(options) {}

Status ClickClusterModel::Train(const TrainingData& data) {
  if (data.records == nullptr || data.dictionary == nullptr) {
    return Status::InvalidArgument(
        "ClickClusterModel requires TrainingData.records and .dictionary");
  }
  if (data.vocabulary_size == 0) {
    return Status::InvalidArgument("TrainingData.vocabulary_size is 0");
  }
  cluster_of_.clear();
  clusters_.clear();
  num_clusters_ = 0;
  vocabulary_size_ = data.vocabulary_size;

  // Per-query clicked-URL sets (hashed) and click totals.
  std::unordered_map<QueryId, std::vector<uint64_t>> urls_of;
  std::unordered_map<QueryId, uint64_t> clicks_of;
  std::unordered_map<uint64_t, std::vector<QueryId>> queries_of_url;
  for (const RawLogRecord& record : *data.records) {
    if (record.clicks.empty()) continue;
    const auto id = data.dictionary->Lookup(record.query);
    if (!id.has_value()) continue;
    for (const UrlClick& click : record.clicks) {
      const uint64_t url = HashString(click.url);
      urls_of[*id].push_back(url);
      ++clicks_of[*id];
    }
  }
  for (auto& [query, urls] : urls_of) {
    std::sort(urls.begin(), urls.end());
    urls.erase(std::unique(urls.begin(), urls.end()), urls.end());
    if (clicks_of[query] < options_.min_clicks) continue;
    for (uint64_t url : urls) queries_of_url[url].push_back(query);
  }

  // Candidate pairs come from shared URLs; very high fan-out URLs (portal
  // pages) are truncated to their most-clicked queries, standard practice
  // for click-graph clustering at scale.
  constexpr size_t kMaxUrlFanout = 64;
  UnionFind uf(data.vocabulary_size);
  for (auto& [url, queries] : queries_of_url) {
    if (queries.size() < 2) continue;
    if (queries.size() > kMaxUrlFanout) {
      std::sort(queries.begin(), queries.end(),
                [&](QueryId a, QueryId b) {
                  if (clicks_of[a] != clicks_of[b]) {
                    return clicks_of[a] > clicks_of[b];
                  }
                  return a < b;
                });
      queries.resize(kMaxUrlFanout);
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      for (size_t j = i + 1; j < queries.size(); ++j) {
        const int32_t a = static_cast<int32_t>(queries[i]);
        const int32_t b = static_cast<int32_t>(queries[j]);
        if (uf.Find(a) == uf.Find(b)) continue;
        if (Jaccard(urls_of[queries[i]], urls_of[queries[j]]) >=
            options_.min_jaccard) {
          uf.Union(a, b);
        }
      }
    }
  }

  // Materialize clusters of size >= 2.
  std::unordered_map<int32_t, std::vector<Member>> by_root;
  for (const auto& [query, clicks] : clicks_of) {
    if (clicks < options_.min_clicks) continue;
    by_root[uf.Find(static_cast<int32_t>(query))].push_back(
        Member{query, clicks});
  }
  for (auto& [root, members] : by_root) {
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end(),
              [](const Member& a, const Member& b) {
                if (a.clicks != b.clicks) return a.clicks > b.clicks;
                return a.query < b.query;
              });
    const int32_t cluster_id = static_cast<int32_t>(clusters_.size());
    for (const Member& member : members) {
      cluster_of_[member.query] = cluster_id;
    }
    clusters_.push_back(std::move(members));
  }
  num_clusters_ = clusters_.size();
  return Status::OK();
}

int32_t ClickClusterModel::ClusterOf(QueryId query) const {
  auto it = cluster_of_.find(query);
  return it == cluster_of_.end() ? -1 : it->second;
}

Recommendation ClickClusterModel::Recommend(std::span<const QueryId> context,
                                            size_t top_n) const {
  Recommendation rec;
  if (context.empty()) return rec;
  const int32_t cluster = ClusterOf(context.back());
  if (cluster < 0) return rec;
  const std::vector<Member>& members =
      clusters_[static_cast<size_t>(cluster)];
  uint64_t total = 0;
  for (const Member& member : members) {
    if (member.query != context.back()) total += member.clicks;
  }
  if (total == 0) return rec;
  rec.covered = true;
  rec.matched_length = 1;
  for (const Member& member : members) {
    if (member.query == context.back()) continue;
    rec.queries.push_back(ScoredQuery{
        member.query,
        static_cast<double>(member.clicks) / static_cast<double>(total)});
    if (rec.queries.size() >= top_n) break;
  }
  return rec;
}

bool ClickClusterModel::Covers(std::span<const QueryId> context) const {
  if (context.empty()) return false;
  const int32_t cluster = ClusterOf(context.back());
  if (cluster < 0) return false;
  return clusters_[static_cast<size_t>(cluster)].size() >= 2;
}

double ClickClusterModel::ConditionalProb(std::span<const QueryId> context,
                                          QueryId next) const {
  const double uniform =
      1.0 / static_cast<double>(vocabulary_size_ == 0 ? 1 : vocabulary_size_);
  if (context.empty()) return uniform;
  const int32_t cluster = ClusterOf(context.back());
  if (cluster < 0) return uniform;
  std::vector<NextQueryCount> nexts;
  uint64_t total = 0;
  for (const Member& member : clusters_[static_cast<size_t>(cluster)]) {
    if (member.query == context.back()) continue;
    nexts.push_back(NextQueryCount{member.query, member.clicks});
    total += member.clicks;
  }
  return internal::SmoothedProb(nexts, total, vocabulary_size_, next);
}

ModelStats ClickClusterModel::Stats() const {
  ModelStats stats;
  stats.name = std::string(Name());
  stats.num_states = num_clusters_;
  for (const auto& cluster : clusters_) {
    stats.num_entries += cluster.size();
  }
  stats.memory_bytes =
      stats.num_entries * (sizeof(Member) + sizeof(QueryId) + 8) +
      clusters_.size() * sizeof(std::vector<Member>);
  return stats;
}

}  // namespace sqp
