#ifndef SQP_CORE_PREDICTION_MODEL_H_
#define SQP_CORE_PREDICTION_MODEL_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "log/context_builder.h"
#include "log/query_dictionary.h"
#include "log/types.h"
#include "util/status.h"

namespace sqp {

/// Everything a model may train from. `sessions` is the reduced, aggregated
/// training corpus. `vocabulary_size` (|Q|) drives the 1/|Q| smoothing of
/// the paper's PST stage (c). `substring_index` is an optional prebuilt
/// kSubstring ContextIndex so that several models (e.g. the components of an
/// MVMM) can share one counting pass; models fall back to building their own
/// when it is absent or incompatible.
struct TrainingData {
  const std::vector<AggregatedSession>* sessions = nullptr;
  size_t vocabulary_size = 0;
  const ContextIndex* substring_index = nullptr;
  /// Raw records with click-through information, required only by
  /// click-based models (e.g. ClickClusterModel); session-based models
  /// ignore it. Queries in the records are resolved through `dictionary`.
  const std::vector<RawLogRecord>* records = nullptr;
  const QueryDictionary* dictionary = nullptr;
};

/// One recommended query with its model score (higher is better; scores are
/// comparable only within a single Recommendation).
struct ScoredQuery {
  QueryId query = kInvalidQueryId;
  double score = 0.0;
};

/// The result of one online recommendation request.
struct Recommendation {
  /// Top-N queries in descending score order (ties broken by ascending
  /// QueryId for determinism). Empty iff the context is not covered.
  std::vector<ScoredQuery> queries;
  /// True iff the model had training evidence applicable to this context.
  bool covered = false;
  /// Number of trailing context queries the model actually used (the length
  /// of the matched state); e.g. always <= 1 for pair-wise models.
  size_t matched_length = 0;
};

/// Size accounting for the paper's Table VII.
struct ModelStats {
  std::string name;
  uint64_t memory_bytes = 0;  // estimated resident footprint
  uint64_t num_states = 0;    // trained states (PST nodes / context keys)
  uint64_t num_entries = 0;   // (state, next-query) count entries
};

/// Abstract sequential query predictor (paper Definition 1): estimates
/// P(next | context) from search logs and serves ranked recommendations.
///
/// Usage: construct, Train once, then call the const query methods from any
/// number of readers. Models are not thread-safe during Train.
class PredictionModel {
 public:
  virtual ~PredictionModel() = default;

  /// Stable model name ("Adjacency", "VMM (0.05)", ...).
  virtual std::string_view Name() const = 0;

  /// Builds the model from the training corpus. Returns InvalidArgument if
  /// `data.sessions` is null or `vocabulary_size` is 0.
  virtual Status Train(const TrainingData& data) = 0;

  /// Recommends up to `top_n` next queries for `context` (the user's queries
  /// so far, oldest first). Never fails: an uncovered context yields an
  /// empty, covered=false result.
  virtual Recommendation Recommend(std::span<const QueryId> context,
                                   size_t top_n) const = 0;

  /// True iff the model can produce at least one recommendation for
  /// `context`. Default implementation runs Recommend(context, 1).
  virtual bool Covers(std::span<const QueryId> context) const;

  /// Smoothed conditional probability P(next | context): observed
  /// continuations get count/(total + u/|Q|) and each unobserved query gets
  /// (1/|Q|)/(total + u/|Q|), where u is the number of unobserved queries,
  /// so the distribution sums to 1 over the vocabulary (paper PST stage c).
  /// For a completely uncovered context returns the uniform 1/|Q|.
  virtual double ConditionalProb(std::span<const QueryId> context,
                                 QueryId next) const = 0;

  /// Size accounting (Table VII).
  virtual ModelStats Stats() const = 0;
};

namespace internal {

/// Shared helper implementing the smoothing contract of ConditionalProb for
/// a sorted ContextEntry-style count list.
double SmoothedProb(const std::vector<NextQueryCount>& nexts,
                    uint64_t total_count, size_t vocabulary_size,
                    QueryId next);

/// Extracts the top-N of a count list as a Recommendation (scores are
/// maximum-likelihood probabilities).
void FillTopN(const std::vector<NextQueryCount>& nexts, uint64_t total_count,
              size_t top_n, Recommendation* rec);

Status ValidateTrainingData(const TrainingData& data);

}  // namespace internal
}  // namespace sqp

#endif  // SQP_CORE_PREDICTION_MODEL_H_
