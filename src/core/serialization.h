#ifndef SQP_CORE_SERIALIZATION_H_
#define SQP_CORE_SERIALIZATION_H_

#include <string>

#include "core/vmm_model.h"
#include "log/query_dictionary.h"
#include "util/status.h"

namespace sqp {

/// Persists a trained VMM (its PST, options and vocabulary size) to a
/// versioned binary file, so an online server can load models trained
/// offline (the paper's two-phase deployment, Section I-B).
Status SaveVmmModel(const VmmModel& model, const std::string& path);

/// Restores a VMM saved by SaveVmmModel. `model` is overwritten; its
/// configured options are replaced by the persisted ones.
Status LoadVmmModel(const std::string& path, VmmModel* model);

/// Persists the query dictionary (one normalized query per line, in id
/// order) next to a saved model.
Status SaveDictionary(const QueryDictionary& dictionary,
                      const std::string& path);

/// Restores a dictionary saved by SaveDictionary; ids are reassigned in
/// file order, so they match the saving process exactly.
Status LoadDictionary(const std::string& path, QueryDictionary* dictionary);

}  // namespace sqp

#endif  // SQP_CORE_SERIALIZATION_H_
