#ifndef SQP_CORE_SERVING_WALK_H_
#define SQP_CORE_SERVING_WALK_H_

/// The compact serving walk as a runtime-free layer: pure model arithmetic
/// over caller-provided memory, with no dependency on the engine runtime
/// (no threads, no mmap, no exceptions/RTTI, no allocation, no iostreams,
/// no function-local statics). Everything mutable a request touches lives
/// in a caller-owned WalkScratch; everything immutable is referenced
/// through a ModelRef of raw pointers into storage the caller keeps alive.
///
/// Two consumers share this layer and must serve bit-identical results:
///
///   - the engine tiers (core/compact_snapshot.h binds its CSR views into
///     a ModelRef; serve/ and net/ ride on top), which add SIMD dispatch,
///     snapshot swap, admission control and persistence around it;
///   - the slim embedded predictor (src/slim/, include/sqp/slim.h), a
///     dependency-free static library that links this layer, the blob
///     parser and nothing else — the form factor a browser omnibox,
///     mobile keyboard or JNI/Python/Rust binding embeds.
///
/// The arithmetic is operation-for-operation the MVMM serving math of the
/// paper (Eq. 4-6 weighting, escape-weighted per-level accumulation,
/// score-desc/query-asc ranking) over the quantized compact layout; the
/// equivalence is pinned by tests/slim/ and the golden blob sweep, which
/// serve the same blob through both consumers and compare score bits.
///
/// Freestanding-ish discipline (keep it that way):
///   - headers: C standard headers plus <algorithm> (lower_bound / sort
///     are header-only) and <cmath> (libm) only;
///   - no std::vector/string (operator new is a libstdc++ symbol), no
///     std::stable_sort (allocates), no function-local statics with
///     dynamic initializers (__cxa_guard), no exceptions/RTTI.
/// CI's slim-abi job enforces this by linking the slim library from a C99
/// translation unit without libstdc++ and inspecting its undefined symbols.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace sqp::serving {

/// How the mixture weighs its components for an online context (paper
/// Eq. 4 plus the ablation variants). This is the canonical definition;
/// core/model_snapshot.h aliases it for the engine-side spelling
/// `sqp::MixtureWeighting`. The enumerator order is persisted in snapshot
/// blobs (META weighting u32) — append, never reorder.
enum class MixtureWeighting {
  kGaussianEditDistance,  // paper Eq. 4, sigmas learned by Newton iteration
  kUniform,               // every component weighs the same
  kLongestMatch,          // all weight on the deepest-matching component(s)
};

/// What a model knows about the scratch capacity one request against it
/// can need. Computed by FinalizeModelRef from the bound arrays, so any
/// consumer — engine scratch pools and slim's create-time arena alike —
/// can size every per-thread buffer up front and serve allocation-free.
struct ScratchSizing {
  size_t path_depth = 0;      // longest possible matched path
  size_t num_components = 0;  // mixture component count
  size_t raw_entries = 0;     // candidate list bound for one request
  size_t dense_queries = 0;   // dense-accumulator slots (0 = unused)
};

/// Epoch-stamped dense per-query score accumulator over caller-owned
/// arrays. score[q] is valid iff stamp[q] == epoch; BeginGeneration
/// invalidates every slot in O(1) by bumping the epoch (with an exact O(n)
/// re-zero only on the ~4-billion generation wraparound). `touched` lists
/// the queries written this generation, in first-touch order.
///
/// All three arrays must have `capacity` slots; stamps must start zeroed
/// (0 is never a live epoch). The struct is the persistent accumulator
/// state — keep it (or at least its epoch) alive across requests so the
/// epoch trick stays sound. The engine wraps it in the vector-backed
/// kernels::AccumulatorStorage; slim carves it from its create-time arena.
struct DenseAccumulator {
  double* score = nullptr;
  uint32_t* stamp = nullptr;
  uint32_t* touched = nullptr;
  size_t capacity = 0;
  size_t touched_count = 0;
  uint32_t epoch = 0;

  /// Starts a new accumulation generation over every slot.
  void BeginGeneration() {
    if (++epoch == 0) {
      // Wrapped: stamps from ~2^32 generations ago could alias the new
      // epoch, so pay one exact reset.
      if (capacity > 0) std::memset(stamp, 0, capacity * sizeof(uint32_t));
      epoch = 1;
    }
    touched_count = 0;
  }

  /// Merges one contribution. First touch of a generation *assigns* (no
  /// read of the stale score), later touches add — accumulation order is
  /// the call order, which the serving walk keeps level-major.
  inline void Add(uint32_t query, double value) {
    if (stamp[query] != epoch) {
      stamp[query] = epoch;
      score[query] = value;
      touched[touched_count++] = query;
    } else {
      score[query] += value;
    }
  }
};

/// Scores one CSR run: for each entry i, merges
/// `scale * static_cast<double>(codes[i])` into acc->Add(queries[i], ...).
/// The caller folds the node's block shift into `scale` (exactly, as a
/// power-of-two scaling), so kernels never see the shift. The SIMD tiers
/// (core/serve_kernels.h) implement the same signatures; every tier
/// performs the same IEEE operations per entry, so all are bit-identical.
using ScoreRunU16Fn = void (*)(const uint16_t* queries,
                               const uint16_t* codes, size_t n, double scale,
                               DenseAccumulator* acc);
using ScoreRunU32Fn = void (*)(const uint32_t* queries,
                               const uint16_t* codes, size_t n, double scale,
                               DenseAccumulator* acc);

/// The dispatch table of one kernel tier: one scoring kernel per id width.
struct KernelTable {
  ScoreRunU16Fn score_run_u16 = nullptr;
  ScoreRunU32Fn score_run_u32 = nullptr;
};

/// Portable reference kernel: one widening conversion and one multiply per
/// entry, merged in index order — the bit-exact oracle every SIMD tier is
/// pinned against.
template <typename QT>
void ScoreRunScalar(const QT* queries, const uint16_t* codes, size_t n,
                    double scale, DenseAccumulator* acc) {
  for (size_t i = 0; i < n; ++i) {
    acc->Add(queries[i], scale * static_cast<double>(codes[i]));
  }
}

/// The always-available scalar table (constant-initialized; no guards).
/// Slim serves through exactly this; the engine's runtime dispatch
/// (core/serve_kernels.h) picks SIMD tiers over it when the host allows.
const KernelTable& ScalarKernels();

/// Width-overloaded spellings so templated callers pick the right slot.
inline void ScoreRun(const KernelTable& table, const uint16_t* queries,
                     const uint16_t* codes, size_t n, double scale,
                     DenseAccumulator* acc) {
  table.score_run_u16(queries, codes, n, scale, acc);
}
inline void ScoreRun(const KernelTable& table, const uint32_t* queries,
                     const uint16_t* codes, size_t n, double scale,
                     DenseAccumulator* acc) {
  table.score_run_u32(queries, codes, n, scale, acc);
}

/// Best-effort read prefetch of the cache line at `address` (no-op where
/// the builtin is unavailable). The walk uses it to pull the next path
/// level's CSR slices in while the current level is being scored.
inline void PrefetchRead(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/3);
#else
  (void)address;
#endif
}

/// Width-parameterized raw-pointer views of the compact id pools. `QT`
/// holds query ids, `NT` node ids; the root index uses node id 0 (never a
/// child) as its absent sentinel.
template <typename QT, typename NT>
struct PoolsRef {
  const QT* next_query = nullptr;   // num_entries
  const QT* edge_query = nullptr;   // num_edges
  const NT* edge_child = nullptr;   // num_edges
  const NT* root_child_by_query = nullptr;  // root_index_size
  size_t root_index_size = 0;
};

/// Escape power tables cover powers up to this cap; beyond it the chain is
/// extended by plain multiplication (bit-identical to the pre-table loop).
inline constexpr size_t kEscapePowCap = 64;

/// Dense accumulation is used whenever the id space is small enough for an
/// O(vocabulary) per-thread array; pathological sparse id spaces (only
/// reachable via hand-built wide blobs) fall back to the sort-merge so
/// memory stays bounded.
inline constexpr uint64_t kDenseQueryBoundLimit = uint64_t{1} << 24;

/// One compact model, as raw pointers into caller-owned storage (owned
/// vectors, a memory-mapped blob, or a caller-provided buffer — the walk
/// cannot tell). All arrays little-endian-decoded, host-order, naturally
/// aligned. Exactly one of mask16/mask64 is non-null, and exactly one of
/// the narrow/wide pools is populated (`narrow_ids` says which).
///
/// The `derived` block is computed once per model by FinalizeModelRef;
/// everything above it is bound by the storage owner.
struct ModelRef {
  // Node arrays, parallel, index = node id, 0 = root.
  const uint32_t* next_begin = nullptr;   // num_nodes + 1 (CSR offsets)
  const uint32_t* child_begin = nullptr;  // num_nodes + 1 (CSR offsets)
  const uint32_t* total_count = nullptr;  // num_nodes
  const uint32_t* start_count = nullptr;  // num_nodes
  const uint8_t* count_shift = nullptr;   // num_nodes
  const uint16_t* mask16 = nullptr;       // num_nodes, or null
  const uint64_t* mask64 = nullptr;       // num_nodes, or null
  /// Quantized count codes, parallel to the active pools' next_query.
  const uint16_t* next_code = nullptr;    // num_entries
  size_t num_nodes = 0;
  size_t num_entries = 0;
  size_t num_edges = 0;
  bool narrow_ids = false;
  PoolsRef<uint16_t, uint16_t> narrow;
  PoolsRef<uint32_t, uint32_t> wide;

  // Mixture state.
  MixtureWeighting weighting = MixtureWeighting::kGaussianEditDistance;
  const double* sigmas = nullptr;            // num_components
  const double* component_escape = nullptr;  // num_components
  size_t num_components = 0;

  // ----- derived (FinalizeModelRef) -----

  /// Escape power tables, row-major k x (kEscapePowCap + 1):
  /// escape_pow[c * (cap+1) + j] = component_escape[c]^j.
  const double* escape_pow = nullptr;
  /// One past the largest query id in the nexts pool: the dense
  /// accumulator's slot count.
  uint64_t scored_query_bound = 0;
  /// Largest per-node nexts run (scratch sizing).
  uint32_t max_next_run = 0;
  bool dense_merge = true;
  ScratchSizing sizing;
};

/// Computes the derived block of `m` off its bound arrays: the escape
/// power tables (written into `escape_pow_storage`, which the caller owns
/// and must size num_components * (kEscapePowCap + 1) and keep alive as
/// long as `m`), the dense-accumulator bound, and the scratch sizing.
/// `depth_scratch` is a num_nodes-sized work array used only during the
/// call (may be null when num_nodes == 0). Runs before a blob's structural
/// validation has vetted the arrays, so it stays in-bounds on malformed
/// CSR offsets (a bad blob merely mis-sizes hints and is then rejected).
void FinalizeModelRef(ModelRef* m, double* escape_pow_storage,
                      uint32_t* depth_scratch);

/// Longest-suffix walk recording the matched chain into `path` (capacity
/// `path_capacity`; sizing.path_depth bounds the depth of every
/// well-formed model, and the walk additionally never writes past the
/// capacity). Returns the matched depth.
size_t MatchPath(const ModelRef& m, const uint32_t* context, size_t len,
                 int32_t* path, size_t path_capacity);

/// True iff the model can match at least the last context query.
bool Covers(const ModelRef& m, const uint32_t* context, size_t len);

/// Gaussian density N(x; 0, sigma) — the walk-layer twin of
/// util/math_util's GaussianPdf (same constant, same operations, so the
/// two are bit-identical; no SQP_CHECK so the layer stays abort-free).
inline double GaussianPdf(double x, double sigma) {
  constexpr double kInvSqrt2Pi = 0.3989422804014327;
  const double z = x / sigma;
  return kInvSqrt2Pi / sigma * std::exp(-0.5 * z * z);
}

/// Unnormalized per-component weights (paper Eq. 4 plus the ablation
/// variants, including the all-underflow depth fallback). `matched` and
/// `weights` have `k` = num_components entries; `context_len` is the full
/// online context length.
void ComputeWeights(MixtureWeighting weighting, const double* sigmas,
                    size_t k, size_t context_len, const size_t* matched,
                    double* weights);

/// Normalizes `weights[0..k)` to sum to 1. No-op if the sum is <= 0.
void NormalizeWeights(double* weights, size_t k);

/// default_escape[component]^power via the derived table; beyond the cap
/// the chain is extended by multiplication (bit-identical to the loop).
double EscapePow(const ModelRef& m, size_t component, size_t power);

/// EscapeMass (Eq. 5-6) off the stored start/total counts.
double EscapeWeight(const ModelRef& m, int32_t node, size_t dropped,
                    size_t component);

/// One candidate of the sparse (sort-merge) ranking path. `seq` is the
/// push sequence number: sorting by (query, seq) reproduces the
/// stable-sort-by-query order without std::stable_sort's allocation, so
/// contributions sum in exactly the legacy order and the merged doubles
/// are bit-identical.
struct RawHit {
  uint32_t query = 0;
  uint32_t seq = 0;
  double score = 0.0;
};

/// Caller-owned mutable state of one request. Capacities the caller must
/// provide (see ScratchSizing): path/level_weight >= path_capacity slots,
/// matched/weights >= num_components, raw >= raw_capacity RawHits (sparse
/// path only; sizing.raw_entries bounds it for well-formed models), acc
/// prepared over sizing.dense_queries slots with BeginGeneration already
/// called for this request (dense path only).
struct WalkScratch {
  int32_t* path = nullptr;
  size_t path_capacity = 0;
  size_t* matched = nullptr;
  double* weights = nullptr;
  double* level_weight = nullptr;
  RawHit* raw = nullptr;
  size_t raw_capacity = 0;
  DenseAccumulator* acc = nullptr;
};

struct WalkResult {
  size_t count = 0;           // entries written to out_queries/out_scores
  size_t matched_length = 0;  // depth of the matched chain
  bool covered = false;       // false = no candidates (count == 0)
};

/// One full recommendation: longest-suffix match, Eq. 4/5 mixture
/// weighting, escape-weighted per-level accumulation over the CSR nexts
/// slices, and top-N ranking (score desc, query asc) into the caller's
/// arrays (capacity `top_n` each). `use_dense` selects the dense
/// epoch-stamped accumulation (requires scratch->acc) over the sparse
/// sort-merge (requires scratch->raw); both rank identically — the engine
/// keeps a test hook on the choice, slim follows m.dense_merge.
WalkResult RecommendTopN(const ModelRef& m, const uint32_t* context,
                         size_t len, size_t top_n,
                         const KernelTable& kernels, bool use_dense,
                         WalkScratch* scratch, uint32_t* out_queries,
                         double* out_scores);

}  // namespace sqp::serving

#endif  // SQP_CORE_SERVING_WALK_H_
