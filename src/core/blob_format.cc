// Runtime-free blob parsing (see blob_format.h for the layering
// contract). Exact port of the pre-split snapshot_io parse sequence —
// same checks in the same order, so the engine loader and the slim
// predictor reject exactly the same inputs.

#include "core/blob_format.h"

#include <cstring>

#include "util/byte_io.h"

namespace sqp::serving {

const char* BlobErrorMessage(BlobError error) {
  switch (error) {
    case BlobError::kNone:
      return "ok";
    case BlobError::kTruncatedHeader:
      return "shorter than the file header";
    case BlobError::kBadMagic:
      return "bad magic";
    case BlobError::kHeaderCrc:
      return "header checksum mismatch";
    case BlobError::kVersionMismatch:
      return "unsupported snapshot format version";
    case BlobError::kFileSizeMismatch:
      return "file size mismatch (truncated or padded)";
    case BlobError::kSectionCount:
      return "implausible section count";
    case BlobError::kSectionTablePastEnd:
      return "section table past end of file";
    case BlobError::kSectionTableCrc:
      return "section table checksum mismatch";
    case BlobError::kDuplicateSection:
      return "duplicate section";
    case BlobError::kMisalignedSection:
      return "misaligned section";
    case BlobError::kSectionPastEnd:
      return "section past end of file";
    case BlobError::kMissingSection:
      return "missing section";
    case BlobError::kSectionCrc:
      return "section checksum mismatch";
    case BlobError::kMetaSize:
      return "META size";
    case BlobError::kUnknownWeighting:
      return "unknown weighting scheme";
    case BlobError::kNodeCount:
      return "implausible node count";
    case BlobError::kEntryCount:
      return "entry/edge count exceeds CSR offset width";
    case BlobError::kComponentCount:
      return "implausible component count";
    case BlobError::kNarrowMaskComponents:
      return "narrow masks with more than 16 components";
    case BlobError::kNarrowIdNodes:
      return "narrow ids with more than 65535 nodes";
    case BlobError::kSectionSizeMismatch:
      return "section size mismatch";
    case BlobError::kCountShiftRange:
      return "count shift out of range";
    case BlobError::kCsrStart:
      return "CSR offsets must start at 0";
    case BlobError::kCsrTerminal:
      return "CSR terminal offset mismatch";
    case BlobError::kCsrNotMonotone:
      return "CSR offsets not monotone";
    case BlobError::kEdgeOrder:
      return "edge queries not strictly ascending";
    case BlobError::kEdgeChildRange:
      return "edge child id out of range";
    case BlobError::kRootIndexRange:
      return "root index id out of range";
  }
  return "unknown blob error";
}

BlobError ParseBlobLayout(const uint8_t* blob, size_t size,
                          bool verify_checksums, BlobLayout* out) {
  if (size < kBlobHeaderSize) return BlobError::kTruncatedHeader;
  if (std::memcmp(blob, kBlobMagic, sizeof(kBlobMagic)) != 0) {
    return BlobError::kBadMagic;
  }
  const uint32_t header_crc = LoadLE32(blob + 60);
  if (header_crc != Crc32(blob, 60)) return BlobError::kHeaderCrc;
  out->format_version = LoadLE32(blob + 8);
  if (out->format_version != kBlobFormatVersion) {
    return BlobError::kVersionMismatch;
  }
  const uint32_t section_count = LoadLE32(blob + 12);
  const uint64_t file_size = LoadLE64(blob + 16);
  const uint32_t table_crc = LoadLE32(blob + 24);
  if (file_size != size) return BlobError::kFileSizeMismatch;
  if (section_count == 0 || section_count > kBlobMaxSections) {
    return BlobError::kSectionCount;
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(section_count) * kBlobSectionRowSize;
  if (kBlobHeaderSize + table_bytes > size) {
    return BlobError::kSectionTablePastEnd;
  }
  if (table_crc !=
      Crc32(blob + kBlobHeaderSize, static_cast<size_t>(table_bytes))) {
    return BlobError::kSectionTableCrc;
  }

  bool present[kBlobMaxSections + 1] = {};
  uint32_t crc_of[kBlobNumKnownSections + 1] = {};
  for (uint32_t i = 0; i < section_count; ++i) {
    const uint8_t* row = blob + kBlobHeaderSize + i * kBlobSectionRowSize;
    const uint32_t id = LoadLE32(row);
    const uint32_t crc = LoadLE32(row + 4);
    const uint64_t offset = LoadLE64(row + 8);
    const uint64_t row_size = LoadLE64(row + 16);
    if (id == 0 || id > kBlobMaxSections) continue;  // unknown ids skipped
    if (present[id]) return BlobError::kDuplicateSection;
    present[id] = true;
    if (offset % kBlobSectionAlignment != 0) {
      return BlobError::kMisalignedSection;
    }
    if (offset > size || row_size > size - offset) {
      return BlobError::kSectionPastEnd;
    }
    if (id <= kBlobNumKnownSections) {
      out->sections[id] = BlobSectionRef{offset, row_size};
      crc_of[id] = crc;
    }
  }

  for (uint32_t id = 1; id <= kBlobNumKnownSections; ++id) {
    if (!present[id]) return BlobError::kMissingSection;
    if (verify_checksums) {
      const BlobSectionRef& sec = out->sections[id];
      if (crc_of[id] != Crc32(blob + sec.offset,
                              static_cast<size_t>(sec.size))) {
        return BlobError::kSectionCrc;
      }
    }
  }

  // META: fixed-size field block.
  const BlobSectionRef& meta_sec = out->sections[kSecMeta];
  if (meta_sec.size != kBlobMetaSize) return BlobError::kMetaSize;
  const uint8_t* meta = blob + meta_sec.offset;
  out->snapshot_version = LoadLE64(meta);
  const uint32_t weighting = LoadLE32(meta + 8);
  const uint32_t flags = LoadLE32(meta + 12);
  out->top_k = LoadLE64(meta + 16);
  out->num_nodes = LoadLE64(meta + 24);
  out->num_entries = LoadLE64(meta + 32);
  out->num_edges = LoadLE64(meta + 40);
  out->root_index_size = LoadLE64(meta + 48);
  out->num_components = LoadLE32(meta + 56);
  if (weighting > static_cast<uint32_t>(MixtureWeighting::kLongestMatch)) {
    return BlobError::kUnknownWeighting;
  }
  out->weighting = static_cast<MixtureWeighting>(weighting);
  out->narrow_ids = (flags & kBlobFlagNarrowIds) != 0;
  out->narrow_masks = (flags & kBlobFlagNarrowMasks) != 0;

  if (out->num_nodes == 0 || out->num_nodes > uint64_t{0x7fffffff}) {
    return BlobError::kNodeCount;
  }
  if (out->num_entries > uint64_t{0xffffffff} ||
      out->num_edges > uint64_t{0xffffffff}) {
    return BlobError::kEntryCount;
  }
  if (out->num_components == 0 || out->num_components > 64) {
    return BlobError::kComponentCount;
  }
  if (out->num_components > 16 && out->narrow_masks) {
    return BlobError::kNarrowMaskComponents;
  }
  if (out->narrow_ids && out->num_nodes > 0xffff) {
    return BlobError::kNarrowIdNodes;
  }

  // Every section size must match the META element counts exactly.
  const uint64_t id_width = out->narrow_ids ? 2 : 4;
  const auto expect_size = [&](BlobSectionId id, uint64_t bytes) {
    return out->sections[id].size == bytes;
  };
  if (!expect_size(kSecSigmas, uint64_t{8} * out->num_components) ||
      !expect_size(kSecComponentEscape, uint64_t{8} * out->num_components) ||
      !expect_size(kSecNextBegin, 4 * (out->num_nodes + 1)) ||
      !expect_size(kSecChildBegin, 4 * (out->num_nodes + 1)) ||
      !expect_size(kSecTotalCount, 4 * out->num_nodes) ||
      !expect_size(kSecStartCount, 4 * out->num_nodes) ||
      !expect_size(kSecCountShift, out->num_nodes) ||
      !expect_size(kSecMask16, out->narrow_masks ? 2 * out->num_nodes : 0) ||
      !expect_size(kSecMask64, out->narrow_masks ? 0 : 8 * out->num_nodes) ||
      !expect_size(kSecNextQuery, id_width * out->num_entries) ||
      !expect_size(kSecNextCode, 2 * out->num_entries) ||
      !expect_size(kSecEdgeQuery, id_width * out->num_edges) ||
      !expect_size(kSecEdgeChild, id_width * out->num_edges) ||
      !expect_size(kSecRootIndex, id_width * out->root_index_size)) {
    return BlobError::kSectionSizeMismatch;
  }
  return BlobError::kNone;
}

}  // namespace sqp::serving
