#ifndef SQP_CORE_SNAPSHOT_IO_H_
#define SQP_CORE_SNAPSHOT_IO_H_

/// Persistence for the compact serving snapshot: one versioned,
/// memory-mappable blob per model generation, so a serving replica boots
/// in O(file size) page-ins instead of retraining from the corpus.
///
/// Blob layout (all multi-byte fields little-endian; the full diagram
/// lives in docs/ARCHITECTURE.md):
///
///   [0,64)    file header: magic "SQPSNAP1", format version, section
///             count, total file size, CRC32 of the section table, CRC32
///             of the header itself
///   [64,...)  section table: one 24-byte row per section
///             {id u32, crc32 u32, offset u64, size u64}
///   ...       section payloads, each starting at a 64-byte-aligned
///             offset (zero padding between) so every CSR array can be
///             served directly out of the mapped file with natural
///             alignment
///
/// Sections are the CompactSnapshot arrays verbatim (next_begin,
/// child_begin, counts, shifts, masks, pools, root index) plus a META
/// section holding the model metadata (snapshot version, weighting, id
/// widths, element counts) and the sigma / escape arrays. Every section
/// carries its own CRC32; loading verifies structure always and checksums
/// by default, and rejects corrupt or truncated input with a Status error
/// — never undefined behavior.
///
/// The format version is a compatibility contract: readers accept exactly
/// kSnapshotFormatVersion and CI pins a committed golden blob (see
/// tests/data/) so silent layout drift fails the build.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/compact_snapshot.h"
#include "util/status.h"

namespace sqp {

/// On-disk format version this build writes and accepts.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// The 8-byte magic at offset 0 of every snapshot blob.
inline constexpr char kSnapshotMagic[8] = {'S', 'Q', 'P', 'S',
                                           'N', 'A', 'P', '1'};

/// Manifest format version this build writes and accepts (a contract of
/// its own, pinned by a committed golden manifest in CI exactly like the
/// blob format).
inline constexpr uint32_t kManifestFormatVersion = 1;

/// The 8-byte magic at offset 0 of every snapshot manifest.
inline constexpr char kManifestMagic[8] = {'S', 'Q', 'P', 'M',
                                           'A', 'N', 'I', '1'};

/// One shard blob as pinned by a manifest: where it lives (relative to the
/// manifest's own directory, so a snapshot directory can be moved or
/// rsync'ed wholesale) and *which bytes* are expected there. The identity
/// pin is the blob's size plus its own header CRC32: the header covers the
/// section-table checksum, the table covers every section checksum, so two
/// blobs with equal (size, header_crc) have equal content with CRC
/// confidence — and verifying the pin costs a 64-byte read, not a full
/// blob pass.
struct ShardBlobRef {
  std::string path;
  uint64_t file_size = 0;
  uint32_t header_crc = 0;
};

/// The fleet boot artifact of a sharded deployment: a versioned,
/// checksummed index of per-shard snapshot blobs plus the partition
/// function that routed the training corpus. ShardedEngine::LoadAndPublish
/// (serve/sharded_engine.h) cold-boots every shard from one manifest and
/// refuses shard-count or partition-function mismatches — the manifest is
/// the single source of truth for how the id space was split.
///
/// On-disk layout (little-endian, written atomically like blobs):
///   magic "SQPMANI1" | u32 format version | u32 partition function id
///   | u32 shard count | u64 model version
///   | per shard: u64 blob size, u32 blob header CRC32,
///                u32 path length, path bytes
///   | u32 CRC32 of everything above
struct SnapshotManifest {
  uint32_t partition_function = 0;  // log/shard_partitioner.h ids
  uint64_t version = 0;             // model generation across the fleet
  std::vector<ShardBlobRef> shards;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards.size());
  }
};

/// What kind of snapshot artifact a file is, by magic. Lets callers (e.g.
/// recommender_cli --load-snapshot) accept either and route accordingly.
enum class SnapshotFileKind { kBlob, kManifest };

struct SnapshotLoadOptions {
  /// Verify every section CRC32 before trusting the payload (one
  /// sequential pass over the blob — still orders of magnitude cheaper
  /// than retraining). Structural validation (bounds, CSR monotonicity,
  /// id ranges) always runs regardless. Leave on outside benchmarks.
  bool verify_checksums = true;

  /// Map-path only: advise the kernel (madvise MADV_HUGEPAGE) to back the
  /// mapping with transparent huge pages. The CSR pools are exactly the
  /// random-access-heavy arrays that profit from fewer dTLB misses; the
  /// advice is best-effort and a kernel without THP simply ignores it.
  bool hugepages = true;

  /// Map-path only: copy the blob into an anonymous MAP_HUGETLB mapping
  /// (explicit 2 MiB pages from the reserved hugetlb pool) instead of
  /// serving the file mapping. Stronger guarantee than the THP advice but
  /// costs one blob copy and needs `vm.nr_hugepages` provisioned; when the
  /// pool is empty the map falls back to the plain file mapping
  /// (MappedCompactSnapshot::hugepage_mode reports what happened). Off by
  /// default.
  bool hugetlb = false;
};

/// How a MappedCompactSnapshot's backing memory ended up backed (see
/// SnapshotLoadOptions::hugepages / hugetlb).
enum class HugepageMode {
  kNone,      // plain 4 KiB file mapping (or heap fallback)
  kAdvised,   // file mapping with MADV_HUGEPAGE accepted
  kHugetlb,   // anonymous MAP_HUGETLB copy of the blob
};

/// A serving snapshot whose CSR arrays live in a memory-mapped blob: the
/// zero-copy boot path. Construction (SnapshotIo::Map) validates the blob
/// and points the CompactServingBase views straight into the mapping, so
/// a replica starts serving after O(file size) page-ins with no
/// retraining and no array copies; the mapping is released on
/// destruction. On hosts without POSIX mmap the class transparently falls
/// back to an owned aligned heap copy (zero_copy() reports which).
///
/// Thread-safety: identical to every ServingSnapshot — deeply immutable
/// after construction (PROT_READ mapping), any number of concurrent
/// readers with one SnapshotScratch each.
class MappedCompactSnapshot final : public CompactServingBase {
 public:
  ~MappedCompactSnapshot() override;

  MappedCompactSnapshot(const MappedCompactSnapshot&) = delete;
  MappedCompactSnapshot& operator=(const MappedCompactSnapshot&) = delete;

  /// Table VII accounting over the mapped arrays — directly comparable to
  /// CompactSnapshot::Stats of the snapshot the blob was written from.
  ModelStats Stats() const override;

  /// Total size of the backing blob (header + tables + padding included).
  uint64_t mapped_bytes() const { return blob_size_; }

  /// True when the arrays are served out of an mmap'ed region; false on
  /// the non-POSIX heap-copy fallback.
  bool zero_copy() const { return map_base_ != nullptr; }

  /// How the mapping ended up backed: plain pages, THP-advised, or an
  /// explicit hugetlb copy (see SnapshotLoadOptions).
  HugepageMode hugepage_mode() const { return hugepage_mode_; }

 private:
  friend class SnapshotIo;

  MappedCompactSnapshot() = default;

  void* map_base_ = nullptr;  // POSIX mapping (munmap'ed on destruction)
  size_t blob_size_ = 0;
  /// Length handed to munmap — equals blob_size_ for file mappings but is
  /// rounded up to the huge page size for MAP_HUGETLB mappings.
  size_t map_len_ = 0;
  HugepageMode hugepage_mode_ = HugepageMode::kNone;
  std::vector<uint8_t> heap_copy_;  // fallback backing when mmap is absent
};

/// Save / load / map entry points for the snapshot blob format.
class SnapshotIo {
 public:
  /// Writes `snapshot` to `path` as one blob, atomically: the bytes land
  /// in `path + ".tmp"` first and are renamed over `path` only after a
  /// complete, flushed write — a reader (or a crashed writer) never
  /// observes a half-written blob at `path`.
  static Status Save(const CompactSnapshot& snapshot,
                     const std::string& path);

  /// Restores a blob by copy: the arrays are read into an owned
  /// CompactSnapshot, independent of the file afterwards. Serves
  /// bit-identically to the snapshot Save was given.
  static Result<std::shared_ptr<const CompactSnapshot>> Load(
      const std::string& path, const SnapshotLoadOptions& options = {});

  /// Restores a blob zero-copy: validates the file, maps it read-only and
  /// serves straight out of the mapping. The cold-boot path for serving
  /// replicas (bench/coldstart measures it against train-from-scratch).
  static Result<std::shared_ptr<const MappedCompactSnapshot>> Map(
      const std::string& path, const SnapshotLoadOptions& options = {});

  // ----- sharded-fleet manifests -----

  /// Writes `manifest` to `path` atomically (tmp + fsync + rename, as
  /// Save). Returns InvalidArgument on an empty shard list.
  static Status SaveManifest(const SnapshotManifest& manifest,
                             const std::string& path);

  /// Restores and validates a manifest: magic, format version, CRC32
  /// trailer and structural sanity. Does NOT touch the referenced blobs —
  /// pair with VerifyBlobRef / SnapshotIo::Map per shard.
  static Result<SnapshotManifest> LoadManifest(const std::string& path);

  /// Builds the manifest row for an existing blob: reads its header,
  /// validates the magic, and pins (file_size, header_crc). `stored_path`
  /// is what LoadManifest will hand back (normally the path relative to
  /// the manifest's directory).
  static Result<ShardBlobRef> DescribeBlob(const std::string& blob_path,
                                           const std::string& stored_path);

  /// Checks (64-byte read) that the blob at `blob_path` is the one `ref`
  /// pinned: same size, same header CRC. Catches a stale or foreign blob
  /// swapped under a manifest even when checksum verification is off.
  static Status VerifyBlobRef(const ShardBlobRef& ref,
                              const std::string& blob_path);

  /// Classifies a snapshot artifact by its magic bytes; an error for
  /// unreadable files or unknown magic.
  static Result<SnapshotFileKind> Probe(const std::string& path);
};

/// Resolves a manifest-relative shard path against the manifest location
/// ("shards/s0.blob" next to "/data/fleet.manifest" ->
/// "/data/shards/s0.blob"); absolute shard paths pass through unchanged.
std::string ResolveAgainstManifest(const std::string& manifest_path,
                                   const std::string& shard_path);

/// Free-function spellings of the SnapshotIo entry points.
inline Status SaveCompactSnapshot(const CompactSnapshot& snapshot,
                                  const std::string& path) {
  return SnapshotIo::Save(snapshot, path);
}
inline Result<std::shared_ptr<const CompactSnapshot>> LoadCompactSnapshot(
    const std::string& path, const SnapshotLoadOptions& options = {}) {
  return SnapshotIo::Load(path, options);
}
inline Result<std::shared_ptr<const MappedCompactSnapshot>>
MapCompactSnapshot(const std::string& path,
                   const SnapshotLoadOptions& options = {}) {
  return SnapshotIo::Map(path, options);
}

}  // namespace sqp

#endif  // SQP_CORE_SNAPSHOT_IO_H_
