#ifndef SQP_CORE_SNAPSHOT_IO_H_
#define SQP_CORE_SNAPSHOT_IO_H_

/// Persistence for the compact serving snapshot: one versioned,
/// memory-mappable blob per model generation, so a serving replica boots
/// in O(file size) page-ins instead of retraining from the corpus.
///
/// Blob layout (all multi-byte fields little-endian; the full diagram
/// lives in docs/ARCHITECTURE.md):
///
///   [0,64)    file header: magic "SQPSNAP1", format version, section
///             count, total file size, CRC32 of the section table, CRC32
///             of the header itself
///   [64,...)  section table: one 24-byte row per section
///             {id u32, crc32 u32, offset u64, size u64}
///   ...       section payloads, each starting at a 64-byte-aligned
///             offset (zero padding between) so every CSR array can be
///             served directly out of the mapped file with natural
///             alignment
///
/// Sections are the CompactSnapshot arrays verbatim (next_begin,
/// child_begin, counts, shifts, masks, pools, root index) plus a META
/// section holding the model metadata (snapshot version, weighting, id
/// widths, element counts) and the sigma / escape arrays. Every section
/// carries its own CRC32; loading verifies structure always and checksums
/// by default, and rejects corrupt or truncated input with a Status error
/// — never undefined behavior.
///
/// The format version is a compatibility contract: readers accept exactly
/// kSnapshotFormatVersion and CI pins a committed golden blob (see
/// tests/data/) so silent layout drift fails the build.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/compact_snapshot.h"
#include "util/status.h"

namespace sqp {

/// On-disk format version this build writes and accepts.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// The 8-byte magic at offset 0 of every snapshot blob.
inline constexpr char kSnapshotMagic[8] = {'S', 'Q', 'P', 'S',
                                           'N', 'A', 'P', '1'};

struct SnapshotLoadOptions {
  /// Verify every section CRC32 before trusting the payload (one
  /// sequential pass over the blob — still orders of magnitude cheaper
  /// than retraining). Structural validation (bounds, CSR monotonicity,
  /// id ranges) always runs regardless. Leave on outside benchmarks.
  bool verify_checksums = true;
};

/// A serving snapshot whose CSR arrays live in a memory-mapped blob: the
/// zero-copy boot path. Construction (SnapshotIo::Map) validates the blob
/// and points the CompactServingBase views straight into the mapping, so
/// a replica starts serving after O(file size) page-ins with no
/// retraining and no array copies; the mapping is released on
/// destruction. On hosts without POSIX mmap the class transparently falls
/// back to an owned aligned heap copy (zero_copy() reports which).
///
/// Thread-safety: identical to every ServingSnapshot — deeply immutable
/// after construction (PROT_READ mapping), any number of concurrent
/// readers with one SnapshotScratch each.
class MappedCompactSnapshot final : public CompactServingBase {
 public:
  ~MappedCompactSnapshot() override;

  MappedCompactSnapshot(const MappedCompactSnapshot&) = delete;
  MappedCompactSnapshot& operator=(const MappedCompactSnapshot&) = delete;

  /// Table VII accounting over the mapped arrays — directly comparable to
  /// CompactSnapshot::Stats of the snapshot the blob was written from.
  ModelStats Stats() const override;

  /// Total size of the backing blob (header + tables + padding included).
  uint64_t mapped_bytes() const { return blob_size_; }

  /// True when the arrays are served out of an mmap'ed region; false on
  /// the non-POSIX heap-copy fallback.
  bool zero_copy() const { return map_base_ != nullptr; }

 private:
  friend class SnapshotIo;

  MappedCompactSnapshot() = default;

  void* map_base_ = nullptr;  // POSIX mapping (munmap'ed on destruction)
  size_t blob_size_ = 0;
  std::vector<uint8_t> heap_copy_;  // fallback backing when mmap is absent
};

/// Save / load / map entry points for the snapshot blob format.
class SnapshotIo {
 public:
  /// Writes `snapshot` to `path` as one blob, atomically: the bytes land
  /// in `path + ".tmp"` first and are renamed over `path` only after a
  /// complete, flushed write — a reader (or a crashed writer) never
  /// observes a half-written blob at `path`.
  static Status Save(const CompactSnapshot& snapshot,
                     const std::string& path);

  /// Restores a blob by copy: the arrays are read into an owned
  /// CompactSnapshot, independent of the file afterwards. Serves
  /// bit-identically to the snapshot Save was given.
  static Result<std::shared_ptr<const CompactSnapshot>> Load(
      const std::string& path, const SnapshotLoadOptions& options = {});

  /// Restores a blob zero-copy: validates the file, maps it read-only and
  /// serves straight out of the mapping. The cold-boot path for serving
  /// replicas (bench/coldstart measures it against train-from-scratch).
  static Result<std::shared_ptr<const MappedCompactSnapshot>> Map(
      const std::string& path, const SnapshotLoadOptions& options = {});
};

/// Free-function spellings of the SnapshotIo entry points.
inline Status SaveCompactSnapshot(const CompactSnapshot& snapshot,
                                  const std::string& path) {
  return SnapshotIo::Save(snapshot, path);
}
inline Result<std::shared_ptr<const CompactSnapshot>> LoadCompactSnapshot(
    const std::string& path, const SnapshotLoadOptions& options = {}) {
  return SnapshotIo::Load(path, options);
}
inline Result<std::shared_ptr<const MappedCompactSnapshot>>
MapCompactSnapshot(const std::string& path,
                   const SnapshotLoadOptions& options = {}) {
  return SnapshotIo::Map(path, options);
}

}  // namespace sqp

#endif  // SQP_CORE_SNAPSHOT_IO_H_
