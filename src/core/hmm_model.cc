#include "core/hmm_model.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace sqp {

HmmModel::HmmModel(HmmOptions options) : options_(options) {}

double HmmModel::Emission(size_t state, QueryId query) const {
  if (query >= vocabulary_size_) return 1e-12;
  return emission_[state * vocabulary_size_ + query];
}

Status HmmModel::Train(const TrainingData& data) {
  SQP_RETURN_IF_ERROR(internal::ValidateTrainingData(data));
  if (options_.num_states == 0) {
    return Status::InvalidArgument("HMM needs at least one hidden state");
  }
  vocabulary_size_ = data.vocabulary_size;
  const size_t s = options_.num_states;
  const size_t v = vocabulary_size_;
  seen_queries_.clear();
  log_likelihood_.clear();

  for (const AggregatedSession& session : *data.sessions) {
    for (QueryId q : session.queries) {
      if (q < v) seen_queries_.insert(q);
    }
  }

  // Random-but-deterministic initialization: near-uniform with jitter so EM
  // can break symmetry; transitions start sticky (intents persist within a
  // session).
  Rng rng(options_.seed);
  initial_.assign(s, 1.0);
  transition_.assign(s * s, 0.0);
  emission_.assign(s * v, 0.0);
  for (double& value : initial_) value = 1.0 + 0.1 * rng.UniformDouble();
  NormalizeInPlace(&initial_);
  for (size_t i = 0; i < s; ++i) {
    for (size_t j = 0; j < s; ++j) {
      transition_[i * s + j] =
          (i == j ? 4.0 : 1.0) + 0.1 * rng.UniformDouble();
    }
  }
  for (size_t i = 0; i < s; ++i) {
    for (size_t q = 0; q < v; ++q) {
      emission_[i * v + q] = 1.0 + rng.UniformDouble();
    }
  }
  // Row-normalize transition/emission.
  auto normalize_rows = [](std::vector<double>* matrix, size_t rows,
                           size_t cols) {
    for (size_t r = 0; r < rows; ++r) {
      double total = 0.0;
      for (size_t c = 0; c < cols; ++c) total += (*matrix)[r * cols + c];
      if (total <= 0.0) continue;
      for (size_t c = 0; c < cols; ++c) (*matrix)[r * cols + c] /= total;
    }
  };
  normalize_rows(&transition_, s, s);
  normalize_rows(&emission_, s, v);

  // Baum-Welch over frequency-weighted unique sessions.
  std::vector<double> next_initial(s);
  std::vector<double> next_transition(s * s);
  std::vector<double> next_emission(s * v);
  for (size_t iteration = 0; iteration < options_.em_iterations; ++iteration) {
    std::fill(next_initial.begin(), next_initial.end(), 0.0);
    std::fill(next_transition.begin(), next_transition.end(), 0.0);
    std::fill(next_emission.begin(), next_emission.end(), 0.0);
    double log_likelihood = 0.0;

    for (const AggregatedSession& session : *data.sessions) {
      const auto& q = session.queries;
      if (q.empty()) continue;
      const double weight = static_cast<double>(session.frequency);
      const size_t len = q.size();

      // Scaled forward-backward.
      std::vector<double> alpha(len * s);
      std::vector<double> beta(len * s);
      std::vector<double> scale(len);
      for (size_t i = 0; i < s; ++i) {
        alpha[i] = initial_[i] * Emission(i, q[0]);
      }
      for (size_t t = 0; t < len; ++t) {
        if (t > 0) {
          for (size_t j = 0; j < s; ++j) {
            double sum = 0.0;
            for (size_t i = 0; i < s; ++i) {
              sum += alpha[(t - 1) * s + i] * transition_[i * s + j];
            }
            alpha[t * s + j] = sum * Emission(j, q[t]);
          }
        }
        double total = 0.0;
        for (size_t i = 0; i < s; ++i) total += alpha[t * s + i];
        if (total <= 0.0) total = 1e-300;
        scale[t] = total;
        for (size_t i = 0; i < s; ++i) alpha[t * s + i] /= total;
        log_likelihood += weight * std::log(total);
      }
      for (size_t i = 0; i < s; ++i) beta[(len - 1) * s + i] = 1.0;
      for (size_t t = len - 1; t-- > 0;) {
        for (size_t i = 0; i < s; ++i) {
          double sum = 0.0;
          for (size_t j = 0; j < s; ++j) {
            sum += transition_[i * s + j] * Emission(j, q[t + 1]) *
                   beta[(t + 1) * s + j];
          }
          beta[t * s + i] = sum / scale[t + 1];
        }
      }

      // Accumulate expected counts.
      for (size_t t = 0; t < len; ++t) {
        double gamma_total = 0.0;
        for (size_t i = 0; i < s; ++i) {
          gamma_total += alpha[t * s + i] * beta[t * s + i];
        }
        if (gamma_total <= 0.0) continue;
        for (size_t i = 0; i < s; ++i) {
          const double gamma =
              alpha[t * s + i] * beta[t * s + i] / gamma_total;
          if (t == 0) next_initial[i] += weight * gamma;
          if (q[t] < v) next_emission[i * v + q[t]] += weight * gamma;
        }
      }
      for (size_t t = 0; t + 1 < len; ++t) {
        double xi_total = 0.0;
        std::vector<double> xi(s * s);
        for (size_t i = 0; i < s; ++i) {
          for (size_t j = 0; j < s; ++j) {
            const double value = alpha[t * s + i] * transition_[i * s + j] *
                                 Emission(j, q[t + 1]) *
                                 beta[(t + 1) * s + j];
            xi[i * s + j] = value;
            xi_total += value;
          }
        }
        if (xi_total <= 0.0) continue;
        for (size_t i = 0; i < s * s; ++i) {
          next_transition[i] += weight * xi[i] / xi_total;
        }
      }
    }

    log_likelihood_.push_back(log_likelihood);

    // Re-estimate with additive smoothing.
    for (size_t i = 0; i < s; ++i) initial_[i] = next_initial[i] + options_.smoothing;
    NormalizeInPlace(&initial_);
    for (size_t i = 0; i < s * s; ++i) {
      transition_[i] = next_transition[i] + options_.smoothing;
    }
    for (size_t i = 0; i < s * v; ++i) {
      emission_[i] = next_emission[i] + options_.smoothing / static_cast<double>(v);
    }
    normalize_rows(&transition_, s, s);
    normalize_rows(&emission_, s, v);
  }
  trained_ = true;
  return Status::OK();
}

std::vector<double> HmmModel::StateDistribution(
    std::span<const QueryId> context) const {
  const size_t s = options_.num_states;
  std::vector<double> state = initial_;
  std::vector<double> next(s);
  for (size_t t = 0; t < context.size(); ++t) {
    if (t > 0) {
      for (size_t j = 0; j < s; ++j) {
        double sum = 0.0;
        for (size_t i = 0; i < s; ++i) {
          sum += state[i] * transition_[i * s + j];
        }
        next[j] = sum;
      }
      state = next;
    }
    for (size_t i = 0; i < s; ++i) state[i] *= Emission(i, context[t]);
    NormalizeInPlace(&state);
  }
  return state;
}

std::vector<double> HmmModel::PredictiveDistribution(
    std::span<const QueryId> context) const {
  const size_t s = options_.num_states;
  const std::vector<double> state = StateDistribution(context);
  std::vector<double> next_state(s, 0.0);
  for (size_t i = 0; i < s; ++i) {
    for (size_t j = 0; j < s; ++j) {
      next_state[j] += state[i] * transition_[i * s + j];
    }
  }
  std::vector<double> predictive(vocabulary_size_, 0.0);
  for (size_t j = 0; j < s; ++j) {
    const double w = next_state[j];
    if (w <= 0.0) continue;
    const double* row = &emission_[j * vocabulary_size_];
    for (size_t q = 0; q < vocabulary_size_; ++q) {
      predictive[q] += w * row[q];
    }
  }
  NormalizeInPlace(&predictive);
  return predictive;
}

Recommendation HmmModel::Recommend(std::span<const QueryId> context,
                                   size_t top_n) const {
  Recommendation rec;
  if (!trained_ || context.empty() || !Covers(context)) return rec;
  const std::vector<double> predictive = PredictiveDistribution(context);
  std::vector<ScoredQuery> ranked;
  ranked.reserve(vocabulary_size_);
  for (size_t q = 0; q < vocabulary_size_; ++q) {
    if (predictive[q] <= 0.0) continue;
    ranked.push_back(ScoredQuery{static_cast<QueryId>(q), predictive[q]});
  }
  std::partial_sort(ranked.begin(),
                    ranked.begin() + static_cast<ptrdiff_t>(
                                         std::min(top_n, ranked.size())),
                    ranked.end(),
                    [](const ScoredQuery& a, const ScoredQuery& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.query < b.query;
                    });
  if (ranked.size() > top_n) ranked.resize(top_n);
  rec.queries = std::move(ranked);
  rec.covered = true;
  rec.matched_length = context.size();
  return rec;
}

bool HmmModel::Covers(std::span<const QueryId> context) const {
  // Comparable coverage semantics to the other models: the current query
  // must be known from training.
  if (!trained_ || context.empty()) return false;
  return seen_queries_.count(context.back()) > 0;
}

double HmmModel::ConditionalProb(std::span<const QueryId> context,
                                 QueryId next) const {
  if (!trained_ || next >= vocabulary_size_) {
    return 1.0 / static_cast<double>(vocabulary_size_ == 0 ? 1
                                                           : vocabulary_size_);
  }
  const std::vector<double> predictive = PredictiveDistribution(context);
  return std::max(predictive[next], 1e-300);
}

ModelStats HmmModel::Stats() const {
  ModelStats stats;
  stats.name = std::string(Name());
  stats.num_states = options_.num_states;
  stats.num_entries = options_.num_states * vocabulary_size_;
  stats.memory_bytes =
      (initial_.size() + transition_.size() + emission_.size()) *
      sizeof(double);
  return stats;
}

}  // namespace sqp
