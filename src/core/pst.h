#ifndef SQP_CORE_PST_H_
#define SQP_CORE_PST_H_

#include <span>
#include <vector>

#include "log/context_builder.h"
#include "log/types.h"
#include "util/status.h"

namespace sqp {

/// Parameters of PST construction (paper Section IV-B.1). Only `epsilon` is
/// tuned in the paper; the rest mirror its fixed conventions.
struct PstOptions {
  /// KL-divergence growth threshold: a context s (|s| >= 2) becomes a state
  /// iff D_KL( P(.|parent(s)) || P(.|s) ) >= epsilon in log base 10, where
  /// parent(s) drops the oldest query. epsilon -> +inf degenerates to an
  /// order-1 (Adjacency-like) model; epsilon = 0 keeps every observed
  /// context (paper Fig. 4).
  double epsilon = 0.05;

  /// Maximum context length D (0 = unbounded). A D-bounded PST never stores
  /// contexts longer than D.
  size_t max_depth = 0;

  /// Candidate contexts with fewer weighted occurrences than this are
  /// filtered before the KL test (paper stage (a), "a user threshold could
  /// be set to filter those infrequent training sequences").
  uint64_t min_support = 1;
};

/// A Prediction Suffix Tree over query sequences.
///
/// Nodes are contexts (oldest query first). The parent of node s is its
/// longest proper suffix (s minus its oldest query); the tree therefore
/// deepens *backwards in time*, and matching a test context walks from the
/// most recent query toward older ones. The suffix-closure invariant holds:
/// if s is a node, every suffix of s is a node.
///
/// A Pst can also be built as a *shared* tree covering several component
/// configurations at once (Pst::BuildShared): one maximal node pool plus a
/// per-node bitmask recording which components ("views") would have built
/// that node — the paper's merged-PST deployment (Section V-F.2).
class Pst {
 public:
  /// One child edge. A node's `children` vector is sorted by `query`
  /// ascending, enabling branch-friendly linear/binary search instead of
  /// per-node hash buckets.
  struct Edge {
    QueryId query = kInvalidQueryId;
    int32_t child = 0;
  };

  struct Node {
    std::vector<QueryId> context;       // empty for the root
    std::vector<NextQueryCount> nexts;  // sorted desc by count
    uint64_t total_count = 0;           // sum of nexts counts
    uint64_t start_count = 0;           // occurrences at session start
    int32_t parent = -1;                // node index; -1 for root
    std::vector<Edge> children;         // sorted by query ascending
  };

  /// Bitmask of the component views a node belongs to (shared trees only).
  using ViewMask = uint64_t;
  static constexpr size_t kMaxViews = 64;

  Pst() = default;

  /// Builds the tree from a kSubstring ContextIndex. The index must have
  /// been built with max_context_length == 0 or >= options.max_depth.
  /// Returns InvalidArgument on mode/depth mismatch.
  Status Build(const ContextIndex& index, const PstOptions& options);

  /// Builds one maximal tree covering every configuration in `views` (the
  /// union of the per-view depth/support bounds) and tags each node with the
  /// set of views whose standalone Build would have produced it. The KL
  /// growth statistic is computed once per node instead of once per
  /// (view, node), and nodes belonging to no view are dropped. At most
  /// kMaxViews views.
  Status BuildShared(const ContextIndex& index,
                     std::span<const PstOptions> views);

  /// Restores a tree from serialized nodes (see core/serialization.h).
  /// `nodes` must list the root first and every parent before its children;
  /// child edge arrays are rebuilt. Returns InvalidArgument on malformed
  /// input.
  Status InitFromNodes(std::vector<Node> nodes, const PstOptions& options);

  /// Walks the longest suffix of `context` present in the tree. Returns the
  /// matched node (possibly the root) and sets `*matched_length` to the
  /// number of trailing context queries matched.
  const Node* MatchLongestSuffix(std::span<const QueryId> context,
                                 size_t* matched_length) const;

  /// View-restricted walk over a shared tree: only descends into nodes
  /// whose mask contains `view`. Because view membership is closed under
  /// the parent (suffix) relation, this is equivalent to matching against
  /// the view's standalone tree.
  const Node* MatchLongestSuffixView(std::span<const QueryId> context,
                                     size_t view,
                                     size_t* matched_length) const;

  /// Longest-suffix walk recording the whole matched chain: (*path)[k] is
  /// the node matching the trailing k+1 context queries. Returns the match
  /// depth (== path->size()). The root is not included.
  size_t MatchPath(std::span<const QueryId> context,
                   std::vector<int32_t>* path) const;

  /// Exact node lookup by context; nullptr if not a state.
  const Node* FindNode(std::span<const QueryId> context) const;

  /// Child of `node` along `query`, or -1.
  int32_t FindChild(int32_t node, QueryId query) const;

  const Node& root() const { return nodes_[0]; }
  const std::vector<Node>& nodes() const { return nodes_; }
  size_t size() const { return nodes_.size(); }
  const PstOptions& options() const { return options_; }

  // ----- shared-tree (multi-view) accessors -----

  bool is_shared() const { return !view_masks_.empty(); }
  size_t num_views() const { return view_options_.size(); }
  const PstOptions& view_options(size_t view) const {
    return view_options_[view];
  }
  /// Per-node view masks, parallel to nodes(); empty for standalone trees.
  const std::vector<ViewMask>& view_masks() const { return view_masks_; }
  /// Mask of one node; all-ones for standalone trees.
  ViewMask mask_of(int32_t node) const {
    return view_masks_.empty() ? ~ViewMask{0}
                               : view_masks_[static_cast<size_t>(node)];
  }

  /// State / entry counts of one view (including the shared root).
  uint64_t view_num_states(size_t view) const;
  uint64_t view_num_entries(size_t view) const;
  /// Bytes the view would occupy as a standalone tree (Table VII
  /// accounting over the flat layout).
  uint64_t view_memory_bytes(size_t view) const;

  /// Materializes one view as a standalone tree (used e.g. when persisting
  /// a single component of a shared build).
  Pst ExtractView(size_t view) const;

  /// Sum of (state, next) entries across nodes.
  uint64_t num_entries() const;

  /// Actual resident bytes of the flat layout: node headers, context ids,
  /// next-count entries, child edge arrays, and (for shared trees) the
  /// per-node view masks.
  uint64_t memory_bytes() const;

 private:
  Status BuildImpl(const ContextIndex& index,
                   std::span<const PstOptions> views, bool shared);
  void RebuildChildren();
  void BuildRootIndex();

  std::vector<Node> nodes_;
  PstOptions options_;
  std::vector<ViewMask> view_masks_;     // parallel to nodes_; shared only
  std::vector<PstOptions> view_options_;  // shared only
  /// Dense root fan-out index: query id -> depth-1 node (-1 if absent).
  /// The root has vocabulary-scale fan-out, so the first walk step uses a
  /// direct lookup instead of a binary search. Query ids are dense
  /// dictionary-interned values, so the table stays small.
  std::vector<int32_t> root_child_by_query_;
};

/// KL divergence between the next-query distributions of a parent and child
/// context, D_KL(parent || child), in log base 10 — the PST growth statistic
/// (validated against the paper's worked example: D_KL(q0 || q1q0) = 0.3449,
/// D_KL(q1 || q0q1) = 0.0837).
double PstGrowthKl(const ContextEntry& parent, const ContextEntry& child);

/// Same statistic over raw count arrays (any order): a merge walk over
/// query-sorted copies held in reusable scratch buffers — no temporary hash
/// maps on the tree-growth hot path.
double PstGrowthKlCounts(std::span<const NextQueryCount> parent,
                         std::span<const NextQueryCount> child);

}  // namespace sqp

#endif  // SQP_CORE_PST_H_
