#ifndef SQP_CORE_PST_H_
#define SQP_CORE_PST_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "log/context_builder.h"
#include "log/types.h"
#include "util/status.h"

namespace sqp {

/// Parameters of PST construction (paper Section IV-B.1). Only `epsilon` is
/// tuned in the paper; the rest mirror its fixed conventions.
struct PstOptions {
  /// KL-divergence growth threshold: a context s (|s| >= 2) becomes a state
  /// iff D_KL( P(.|parent(s)) || P(.|s) ) >= epsilon in log base 10, where
  /// parent(s) drops the oldest query. epsilon -> +inf degenerates to an
  /// order-1 (Adjacency-like) model; epsilon = 0 keeps every observed
  /// context (paper Fig. 4).
  double epsilon = 0.05;

  /// Maximum context length D (0 = unbounded). A D-bounded PST never stores
  /// contexts longer than D.
  size_t max_depth = 0;

  /// Candidate contexts with fewer weighted occurrences than this are
  /// filtered before the KL test (paper stage (a), "a user threshold could
  /// be set to filter those infrequent training sequences").
  uint64_t min_support = 1;
};

/// A Prediction Suffix Tree over query sequences.
///
/// Nodes are contexts (oldest query first). The parent of node s is its
/// longest proper suffix (s minus its oldest query); the tree therefore
/// deepens *backwards in time*, and matching a test context walks from the
/// most recent query toward older ones. The suffix-closure invariant holds:
/// if s is a node, every suffix of s is a node.
class Pst {
 public:
  struct Node {
    std::vector<QueryId> context;            // empty for the root
    std::vector<NextQueryCount> nexts;       // sorted desc by count
    uint64_t total_count = 0;                // sum of nexts counts
    uint64_t start_count = 0;                // occurrences at session start
    int32_t parent = -1;                     // node index; -1 for root
    std::unordered_map<QueryId, int32_t> children;  // keyed by prepended query
  };

  Pst() = default;

  /// Builds the tree from a kSubstring ContextIndex. The index must have
  /// been built with max_context_length == 0 or >= options.max_depth.
  /// Returns InvalidArgument on mode/depth mismatch.
  Status Build(const ContextIndex& index, const PstOptions& options);

  /// Restores a tree from serialized nodes (see core/serialization.h).
  /// `nodes` must list the root first and every parent before its children;
  /// child maps are rebuilt. Returns InvalidArgument on malformed input.
  Status InitFromNodes(std::vector<Node> nodes, const PstOptions& options);

  /// Walks the longest suffix of `context` present in the tree. Returns the
  /// matched node (possibly the root) and sets `*matched_length` to the
  /// number of trailing context queries matched.
  const Node* MatchLongestSuffix(std::span<const QueryId> context,
                                 size_t* matched_length) const;

  /// Exact node lookup by context; nullptr if not a state.
  const Node* FindNode(std::span<const QueryId> context) const;

  const Node& root() const { return nodes_[0]; }
  const std::vector<Node>& nodes() const { return nodes_; }
  size_t size() const { return nodes_.size(); }
  const PstOptions& options() const { return options_; }

  /// Sum of (state, next) entries across nodes.
  uint64_t num_entries() const;

  /// Estimated resident bytes (Table VII accounting).
  uint64_t memory_bytes() const;

 private:
  int32_t GetOrAddNode(const ContextIndex& index,
                       std::span<const QueryId> context);

  std::vector<Node> nodes_;
  PstOptions options_;
};

/// KL divergence between the next-query distributions of a parent and child
/// context, D_KL(parent || child), in log base 10 — the PST growth statistic
/// (validated against the paper's worked example: D_KL(q0 || q1q0) = 0.3449,
/// D_KL(q1 || q0q1) = 0.0837).
double PstGrowthKl(const ContextEntry& parent, const ContextEntry& child);

}  // namespace sqp

#endif  // SQP_CORE_PST_H_
