#ifndef SQP_UTIL_BYTE_IO_H_
#define SQP_UTIL_BYTE_IO_H_

/// Endian-safe binary primitives shared by every on-disk format in the
/// repo (core/serialization VMM files, core/snapshot_io compact blobs):
/// all multi-byte fields are little-endian on disk regardless of host
/// order, readers are truncation-safe (bool-returning, never UB on short
/// input), and CRC-32 covers section checksums. Having exactly one set of
/// byte-level helpers keeps the two formats from drifting apart.

#include <bit>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <span>

namespace sqp {

// ---------------------------------------------------------------- encode

inline void StoreLE16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

inline void StoreLE32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline void StoreLE64(uint8_t* p, uint64_t v) {
  StoreLE32(p, static_cast<uint32_t>(v));
  StoreLE32(p + 4, static_cast<uint32_t>(v >> 32));
}

inline uint16_t LoadLE16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (static_cast<uint16_t>(p[1]) << 8));
}

inline uint32_t LoadLE32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t LoadLE64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadLE32(p)) |
         (static_cast<uint64_t>(LoadLE32(p + 4)) << 32);
}

// ----------------------------------------------------------------- CRC32

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of one buffer.
/// Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const void* data, size_t size);

/// Incremental form: feed `crc` the previous return value (or 0 for the
/// first chunk). Chained updates equal one Crc32 over the concatenation.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

// --------------------------------------------------------------- streams

/// Little-endian field writer over an ostream. Mirrors ByteReader; check
/// good() once after a batch of writes (ostream failure is sticky).
class ByteWriter {
 public:
  explicit ByteWriter(std::ostream* out) : out_(out) {}

  void Bytes(const void* data, size_t size) {
    out_->write(static_cast<const char*>(data),
                static_cast<std::streamsize>(size));
  }
  void U8(uint8_t v) { Bytes(&v, 1); }
  void U16(uint16_t v) {
    uint8_t b[2];
    StoreLE16(b, v);
    Bytes(b, sizeof(b));
  }
  void U32(uint32_t v) {
    uint8_t b[4];
    StoreLE32(b, v);
    Bytes(b, sizeof(b));
  }
  void U64(uint64_t v) {
    uint8_t b[8];
    StoreLE64(b, v);
    Bytes(b, sizeof(b));
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }
  bool good() const { return out_->good(); }

 private:
  std::ostream* out_;
};

/// Little-endian field reader over an istream. Every method returns false
/// on truncated input and leaves the output untouched — callers turn that
/// into a Status error, never into uninitialized reads.
class ByteReader {
 public:
  explicit ByteReader(std::istream* in) : in_(in) {}

  bool Bytes(void* data, size_t size) {
    return static_cast<bool>(
        in_->read(static_cast<char*>(data), static_cast<std::streamsize>(size)));
  }
  bool U8(uint8_t* v) { return Bytes(v, 1); }
  bool U16(uint16_t* v) {
    uint8_t b[2];
    if (!Bytes(b, sizeof(b))) return false;
    *v = LoadLE16(b);
    return true;
  }
  bool U32(uint32_t* v) {
    uint8_t b[4];
    if (!Bytes(b, sizeof(b))) return false;
    *v = LoadLE32(b);
    return true;
  }
  bool U64(uint64_t* v) {
    uint8_t b[8];
    if (!Bytes(b, sizeof(b))) return false;
    *v = LoadLE64(b);
    return true;
  }
  bool I32(int32_t* v) {
    uint32_t u;
    if (!U32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }
  bool F64(double* v) {
    uint64_t u;
    if (!U64(&u)) return false;
    *v = std::bit_cast<double>(u);
    return true;
  }

 private:
  std::istream* in_;
};

// ---------------------------------------------------------- bulk arrays

/// In-place endianness flip of one fixed-width array — the bulk-array hook
/// for big-endian hosts (the disk format is little-endian; on LE hosts the
/// arrays are already in disk order and the call is a no-op at the call
/// sites, which gate on std::endian).
template <typename T>
void ByteSwapInPlace(std::span<T> values) {
  static_assert(sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 ||
                sizeof(T) == 8);
  for (T& value : values) {
    if constexpr (sizeof(T) == 2) {
      auto u = std::bit_cast<uint16_t>(value);
      u = static_cast<uint16_t>((u >> 8) | (u << 8));
      value = std::bit_cast<T>(u);
    } else if constexpr (sizeof(T) == 4) {
      auto u = std::bit_cast<uint32_t>(value);
      uint8_t b[4];
      StoreLE32(b, u);
      u = static_cast<uint32_t>(b[3]) | (static_cast<uint32_t>(b[2]) << 8) |
          (static_cast<uint32_t>(b[1]) << 16) |
          (static_cast<uint32_t>(b[0]) << 24);
      value = std::bit_cast<T>(u);
    } else if constexpr (sizeof(T) == 8) {
      auto u = std::bit_cast<uint64_t>(value);
      uint8_t b[8];
      StoreLE64(b, u);
      uint64_t flipped = 0;
      for (size_t i = 0; i < 8; ++i) {
        flipped = (flipped << 8) | b[i];
      }
      value = std::bit_cast<T>(flipped);
    }
  }
}

/// True iff fixed-width arrays in host memory already have the on-disk
/// (little-endian) byte order and may be written / mapped verbatim.
inline constexpr bool HostIsLittleEndian() {
  return std::endian::native == std::endian::little;
}

}  // namespace sqp

#endif  // SQP_UTIL_BYTE_IO_H_
