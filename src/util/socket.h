#ifndef SQP_UTIL_SOCKET_H_
#define SQP_UTIL_SOCKET_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace sqp {

/// Thin status-returning wrappers over POSIX TCP sockets. Everything the
/// net/ tier needs and nothing more: listen, accept, connect, exact and
/// partial reads/writes, timeouts. All functions map errno onto the
/// library's Status taxonomy — a peer that vanished (EOF, ECONNRESET,
/// EPIPE, timeout) is kUnavailable, local misuse is kInvalidArgument, and
/// everything else is kIOError — so callers never branch on errno.

/// Owning file-descriptor handle. Closes on destruction; move-only.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Reset(); }
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.Release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() { return std::exchange(fd_, -1); }
  void Reset();

 private:
  int fd_ = -1;
};

/// Opens a TCP listener bound to `host`:`port` (SO_REUSEADDR, so a
/// restarted shard server can reclaim its port immediately). `port` 0
/// binds an ephemeral port; recover it with BoundPort.
Result<OwnedFd> ListenTcp(const std::string& host, uint16_t port,
                          int backlog = 64);

/// The port a bound socket actually listens on (resolves port 0).
Result<uint16_t> BoundPort(int fd);

/// Blocking TCP connect. kUnavailable when the peer refuses or the
/// address is unreachable (the caller may retry against a restarted
/// server), kInvalidArgument for a malformed host.
Result<OwnedFd> ConnectTcp(const std::string& host, uint16_t port);

/// Accepts one pending connection from a listener. kUnavailable when the
/// listener is nonblocking and no connection is pending.
Result<OwnedFd> AcceptTcp(int listener_fd);

/// Switches a socket to nonblocking mode (for the epoll event loop).
Status SetNonBlocking(int fd);

/// Bounds every subsequent blocking recv/send on `fd`. A transfer that
/// stalls past the timeout fails kUnavailable instead of hanging the
/// caller forever — the client-side guarantee behind "never hang".
Status SetIoTimeout(int fd, std::chrono::microseconds timeout);

/// Writes the whole buffer, looping over partial sends. EINTR retries;
/// a dead peer is kUnavailable.
Status WriteAllFd(int fd, const uint8_t* data, size_t size);

/// Reads up to `max` bytes, returning how many arrived (>= 1). Clean
/// EOF, reset and timeout all map to kUnavailable: from the framing
/// layer's point of view the stream just ended.
Result<size_t> ReadSomeFd(int fd, uint8_t* out, size_t max);

}  // namespace sqp

#endif  // SQP_UTIL_SOCKET_H_
