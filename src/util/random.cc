#include "util/random.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace sqp {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  SQP_CHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  SQP_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  // Box-Muller; guards against log(0).
  double u1 = UniformDouble();
  while (u1 <= 0.0) u1 = UniformDouble();
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

uint64_t Rng::Geometric(double p) {
  SQP_CHECK(p > 0.0 && p <= 1.0);
  if (p == 1.0) return 0;
  double u = UniformDouble();
  while (u <= 0.0) u = UniformDouble();
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

double Rng::Exponential(double lambda) {
  SQP_CHECK(lambda > 0.0);
  double u = UniformDouble();
  while (u <= 0.0) u = UniformDouble();
  return -std::log(u) / lambda;
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfSampler::ZipfSampler(size_t n, double s) {
  SQP_CHECK(n >= 1);
  SQP_CHECK(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t k) const {
  SQP_CHECK(k < cdf_.size());
  if (k == 0) return cdf_[0];
  return cdf_[k] - cdf_[k - 1];
}

}  // namespace sqp
