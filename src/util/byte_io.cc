#include "util/byte_io.h"

#include <array>

namespace sqp {
namespace {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

// Constant-initialized (no __cxa_guard lazy init): this translation unit
// is linked into the runtime-free slim predictor library, which bans
// function-local statics with dynamic initializers.
constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const std::array<uint32_t, 256>& table = kCrc32Table;
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

}  // namespace sqp
