#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace sqp {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

namespace {
template <typename Vec>
std::string JoinImpl(const Vec& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}
}  // namespace

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  return JoinImpl(parts, sep);
}
std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return JoinImpl(parts, sep);
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;  // overflow
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  bool neg = false;
  if (s[0] == '-') {
    neg = true;
    s.remove_prefix(1);
  }
  uint64_t mag = 0;
  if (!ParseUint64(s, &mag)) return false;
  if (neg) {
    if (mag > static_cast<uint64_t>(INT64_MAX) + 1) return false;
    // Negate in the unsigned domain: -INT64_MIN is not representable, so
    // negating after the cast would be UB exactly at the boundary value.
    *out = static_cast<int64_t>(uint64_t{0} - mag);
  } else {
    if (mag > static_cast<uint64_t>(INT64_MAX)) return false;
    *out = static_cast<int64_t>(mag);
  }
  return true;
}

}  // namespace sqp
