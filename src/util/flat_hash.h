#ifndef SQP_UTIL_FLAT_HASH_H_
#define SQP_UTIL_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sqp {

/// Open-addressing hash map from uint64 keys to uint64 values, built for the
/// training hot path: one flat slot array, linear probing, power-of-two
/// capacity, zero per-insert allocation once warm. The key ~0ull is reserved
/// as the empty-slot marker and must never be inserted; the library's packed
/// (node << 32 | query) keys cannot produce it because node ids are
/// non-negative int32 values.
class FlatU64Map {
 public:
  /// `expected` sizes the initial table to hold that many entries without
  /// growing (rounded up to a power of two at ~50% load).
  explicit FlatU64Map(size_t expected = 0);

  /// Returns a reference to the value for `key`, inserting 0 if absent. The
  /// reference is invalidated by the next insertion.
  uint64_t& operator[](uint64_t key);

  /// Returns the stored value for `key`, or nullptr if absent.
  const uint64_t* Find(uint64_t key) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Calls fn(key, value) for every entry in slot order. The order is
  /// deterministic for a deterministic insertion sequence but otherwise
  /// unspecified; callers that need a canonical order must sort.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmptyKey) fn(keys_[i], values_[i]);
    }
  }

  /// Releases all memory (the map becomes empty with minimal capacity).
  void Reset();

 private:
  static constexpr uint64_t kEmptyKey = ~0ull;

  /// SplitMix64 finalizer: full-avalanche mixing of the packed key.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  size_t SlotFor(uint64_t key) const { return Mix(key) & (keys_.size() - 1); }
  void Grow();

  std::vector<uint64_t> keys_;
  std::vector<uint64_t> values_;
  size_t size_ = 0;
};

}  // namespace sqp

#endif  // SQP_UTIL_FLAT_HASH_H_
