#include "util/edit_distance.h"

#include <algorithm>
#include <vector>

namespace sqp {
namespace {

template <typename Seq>
size_t LevenshteinImpl(const Seq& a, const Seq& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t sub_cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + sub_cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace

size_t EditDistance(std::span<const uint32_t> a, std::span<const uint32_t> b) {
  return LevenshteinImpl(a, b);
}

size_t EditDistance(std::string_view a, std::string_view b) {
  return LevenshteinImpl(a, b);
}

}  // namespace sqp
