#include "util/flat_hash.h"

#include "util/status.h"

namespace sqp {
namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

FlatU64Map::FlatU64Map(size_t expected) {
  const size_t capacity = RoundUpPow2(expected * 2);
  keys_.assign(capacity, kEmptyKey);
  values_.assign(capacity, 0);
}

uint64_t& FlatU64Map::operator[](uint64_t key) {
  SQP_CHECK(key != kEmptyKey);
  if ((size_ + 1) * 2 > keys_.size()) Grow();
  size_t slot = SlotFor(key);
  while (keys_[slot] != kEmptyKey) {
    if (keys_[slot] == key) return values_[slot];
    slot = (slot + 1) & (keys_.size() - 1);
  }
  keys_[slot] = key;
  values_[slot] = 0;
  ++size_;
  return values_[slot];
}

const uint64_t* FlatU64Map::Find(uint64_t key) const {
  if (key == kEmptyKey) return nullptr;
  size_t slot = SlotFor(key);
  while (keys_[slot] != kEmptyKey) {
    if (keys_[slot] == key) return &values_[slot];
    slot = (slot + 1) & (keys_.size() - 1);
  }
  return nullptr;
}

void FlatU64Map::Grow() {
  std::vector<uint64_t> old_keys = std::move(keys_);
  std::vector<uint64_t> old_values = std::move(values_);
  const size_t capacity = old_keys.size() * 2;
  keys_.assign(capacity, kEmptyKey);
  values_.assign(capacity, 0);
  for (size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == kEmptyKey) continue;
    size_t slot = SlotFor(old_keys[i]);
    while (keys_[slot] != kEmptyKey) slot = (slot + 1) & (capacity - 1);
    keys_[slot] = old_keys[i];
    values_[slot] = old_values[i];
  }
}

void FlatU64Map::Reset() {
  keys_.assign(16, kEmptyKey);
  values_.assign(16, 0);
  size_ = 0;
}

}  // namespace sqp
