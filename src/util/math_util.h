#ifndef SQP_UTIL_MATH_UTIL_H_
#define SQP_UTIL_MATH_UTIL_H_

#include <cstddef>
#include <span>
#include <vector>

namespace sqp {

/// Shannon entropy of a discrete distribution in **log base 10**, following
/// the paper ("log base 10 is adopted through the paper"). Zero-probability
/// entries contribute 0. `probs` need not be normalized; it is normalized
/// internally. Returns 0 for empty/degenerate input.
double EntropyLog10(std::span<const double> probs);

/// KL divergence D_KL(p || q) in log base 10. Both inputs are normalized
/// internally. Entries where p_i > 0 but q_i == 0 are handled by flooring q_i
/// at `epsilon_floor` (the PST construction applies its own smoothing before
/// calling this, so the floor is a safety net only).
double KlDivergenceLog10(std::span<const double> p, std::span<const double> q,
                         double epsilon_floor = 1e-12);

/// Normalizes `values` in place to sum to 1. No-op if the sum is <= 0.
void NormalizeInPlace(std::vector<double>* values);

/// Gaussian density N(x; 0, sigma).
double GaussianPdf(double x, double sigma);

/// Solves the dense linear system `a * x = b` (n x n, row major) by Gaussian
/// elimination with partial pivoting. Returns false if the matrix is
/// (numerically) singular. Used by the MVMM Newton step on the sigma vector.
bool SolveLinearSystem(std::vector<double> a, std::vector<double> b, size_t n,
                       std::vector<double>* x);

/// Maximum-likelihood estimate of a discrete power-law exponent alpha for
/// samples x >= x_min (Clauset et al. continuous approximation,
/// alpha = 1 + n / sum ln(x_i / (x_min - 0.5))). Counts are supplied as
/// (value, multiplicity) pairs. Returns 0 if there is not enough data.
double EstimatePowerLawAlpha(
    const std::vector<std::pair<double, double>>& value_and_count,
    double x_min);

}  // namespace sqp

#endif  // SQP_UTIL_MATH_UTIL_H_
