#include "util/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace sqp {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

Status ErrnoStatus(const std::string& what) {
  switch (errno) {
    case ECONNREFUSED:
    case ECONNRESET:
    case EPIPE:
    case ENETUNREACH:
    case EHOSTUNREACH:
    case ETIMEDOUT:
      return Status::Unavailable(Errno(what));
    default:
      return Status::IOError(Errno(what));
  }
}

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void OwnedFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<OwnedFd> ListenTcp(const std::string& host, uint16_t port,
                          int backlog) {
  auto addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0) {
    return ErrnoStatus("bind " + host);
  }
  if (::listen(fd.get(), backlog) != 0) return ErrnoStatus("listen");
  return fd;
}

Result<uint16_t> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<OwnedFd> ConnectTcp(const std::string& host, uint16_t port) {
  auto addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
                   sizeof(*addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return ErrnoStatus("connect " + host);
  int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<OwnedFd> AcceptTcp(int listener_fd) {
  int fd;
  do {
    fd = ::accept(listener_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("no pending connection");
    }
    return ErrnoStatus("accept");
  }
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return OwnedFd(fd);
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoStatus("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Status SetIoTimeout(int fd, std::chrono::microseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(timeout.count() % 1000000);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt(SO_RCVTIMEO)");
  }
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt(SO_SNDTIMEO)");
  }
  return Status::OK();
}

Status WriteAllFd(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Unavailable("send timed out");
      }
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> ReadSomeFd(int fd, uint8_t* out, size_t max) {
  if (max == 0) return Status::InvalidArgument("zero-byte read");
  ssize_t n;
  do {
    n = ::recv(fd, out, max, 0);
  } while (n < 0 && errno == EINTR);
  if (n == 0) return Status::Unavailable("connection closed by peer");
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("recv timed out");
    }
    return ErrnoStatus("recv");
  }
  return static_cast<size_t>(n);
}

}  // namespace sqp
