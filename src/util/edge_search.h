#ifndef SQP_UTIL_EDGE_SEARCH_H_
#define SQP_UTIL_EDGE_SEARCH_H_

#include <algorithm>
#include <cstdint>
#include <span>

namespace sqp {

/// Finds the position of `query` in a query-sorted edge array (any struct
/// with a `query` member), or -1. Small arrays use a branch-friendly linear
/// scan, larger ones binary search; the single threshold lives here so the
/// trie and PST edge layouts cannot drift apart.
template <typename Edge>
int32_t FindEdgeIndex(std::span<const Edge> edges, uint32_t query) {
  if (edges.size() <= 8) {
    for (size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].query == query) return static_cast<int32_t>(i);
      if (edges[i].query > query) break;
    }
    return -1;
  }
  const auto it = std::lower_bound(
      edges.begin(), edges.end(), query,
      [](const Edge& edge, uint32_t q) { return edge.query < q; });
  if (it != edges.end() && it->query == query) {
    return static_cast<int32_t>(it - edges.begin());
  }
  return -1;
}

}  // namespace sqp

#endif  // SQP_UTIL_EDGE_SEARCH_H_
