#include "util/math_util.h"

#include <cmath>

#include "util/status.h"

namespace sqp {
namespace {

double Sum(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

}  // namespace

double EntropyLog10(std::span<const double> probs) {
  const double total = Sum(probs);
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double p : probs) {
    if (p <= 0.0) continue;
    const double pn = p / total;
    h -= pn * std::log10(pn);
  }
  return h;
}

double KlDivergenceLog10(std::span<const double> p, std::span<const double> q,
                         double epsilon_floor) {
  SQP_CHECK(p.size() == q.size());
  const double pt = Sum(p);
  const double qt = Sum(q);
  if (pt <= 0.0 || qt <= 0.0) return 0.0;
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i] / pt;
    if (pi <= 0.0) continue;
    double qi = q[i] / qt;
    if (qi < epsilon_floor) qi = epsilon_floor;
    kl += pi * std::log10(pi / qi);
  }
  return kl;
}

void NormalizeInPlace(std::vector<double>* values) {
  double total = 0.0;
  for (double v : *values) total += v;
  if (total <= 0.0) return;
  for (double& v : *values) v /= total;
}

double GaussianPdf(double x, double sigma) {
  SQP_CHECK(sigma > 0.0);
  static const double kInvSqrt2Pi = 0.3989422804014327;
  const double z = x / sigma;
  return kInvSqrt2Pi / sigma * std::exp(-0.5 * z * z);
}

bool SolveLinearSystem(std::vector<double> a, std::vector<double> b, size_t n,
                       std::vector<double>* x) {
  SQP_CHECK(a.size() == n * n);
  SQP_CHECK(b.size() == n);
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a[pivot * n + c], a[col * n + c]);
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] * inv;
      if (f == 0.0) continue;
      for (size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  x->assign(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double v = b[ri];
    for (size_t c = ri + 1; c < n; ++c) v -= a[ri * n + c] * (*x)[c];
    (*x)[ri] = v / a[ri * n + ri];
  }
  return true;
}

double EstimatePowerLawAlpha(
    const std::vector<std::pair<double, double>>& value_and_count,
    double x_min) {
  SQP_CHECK(x_min > 0.5);
  double n = 0.0;
  double log_sum = 0.0;
  for (const auto& [value, count] : value_and_count) {
    if (value < x_min || count <= 0.0) continue;
    n += count;
    log_sum += count * std::log(value / (x_min - 0.5));
  }
  if (n <= 0.0 || log_sum <= 0.0) return 0.0;
  return 1.0 + n / log_sum;
}

}  // namespace sqp
