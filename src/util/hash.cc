#include "util/hash.h"

namespace sqp {

uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t HashIdSequence(std::span<const uint32_t> ids) {
  // Hash each element separately so that [1,2] and [0x0201...] byte aliasing
  // cannot collide across lengths: mix in the length first.
  uint64_t h = Fnv1a64(nullptr, 0);
  h = HashCombine(h, ids.size());
  for (uint32_t id : ids) h = HashCombine(h, id + 1);
  return h;
}

}  // namespace sqp
