#ifndef SQP_UTIL_HASH_H_
#define SQP_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace sqp {

/// FNV-1a over raw bytes. Stable across platforms and runs; used for
/// hashing query sequences into unordered containers and for building
/// deterministic synthetic identifiers.
uint64_t Fnv1a64(const void* data, size_t len,
                 uint64_t seed = 0xcbf29ce484222325ULL);

inline uint64_t HashString(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

/// Boost-style hash mixing.
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4));
}

/// Hash of a query-id sequence (order sensitive).
uint64_t HashIdSequence(std::span<const uint32_t> ids);

/// Functor for using std::vector<uint32_t> keys in unordered containers.
struct IdSequenceHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    return static_cast<size_t>(HashIdSequence(v));
  }
};

}  // namespace sqp

#endif  // SQP_UTIL_HASH_H_
