#ifndef SQP_UTIL_TIMER_H_
#define SQP_UTIL_TIMER_H_

#include <chrono>

namespace sqp {

/// Simple monotonic wall-clock timer for the training-time experiments
/// (Fig. 12) and example programs.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sqp

#endif  // SQP_UTIL_TIMER_H_
