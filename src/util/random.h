#ifndef SQP_UTIL_RANDOM_H_
#define SQP_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sqp {

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
///
/// Every randomized component in the library takes an explicit seed so that
/// identical seeds reproduce identical corpora, models and metrics. The
/// engine satisfies UniformRandomBitGenerator and so can also be plugged
/// into <random> distributions, although the member helpers below are
/// preferred because their output is platform-stable.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }
  result_type operator()() { return Next(); }

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (deterministic across platforms).
  double Gaussian();

  /// Geometric: number of failures before first success, p in (0,1].
  uint64_t Geometric(double p);

  /// Exponential with rate lambda > 0.
  double Exponential(double lambda);

  /// Fork a new independent generator from this one's stream; useful to give
  /// sub-components their own stream without coupling draw counts.
  Rng Fork();

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipf(s) sampler over {0, 1, ..., n-1}: P(k) proportional to 1/(k+1)^s.
/// Uses a precomputed inverse CDF (binary search), O(log n) per draw and
/// exact with respect to the discrete distribution.
class ZipfSampler {
 public:
  /// Requires n >= 1 and s >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of rank k.
  double Pmf(size_t k) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(X <= k)
};

}  // namespace sqp

#endif  // SQP_UTIL_RANDOM_H_
