#ifndef SQP_UTIL_EDIT_DISTANCE_H_
#define SQP_UTIL_EDIT_DISTANCE_H_

#include <cstdint>
#include <span>
#include <string_view>

namespace sqp {

/// Levenshtein distance between two query-id sequences (unit costs for
/// insert/delete/substitute). Used by the MVMM mixture weights (Eq. 4 of the
/// paper): d = edit distance between the online context and the state a VMM
/// component matched.
size_t EditDistance(std::span<const uint32_t> a, std::span<const uint32_t> b);

/// Levenshtein distance between two strings (character granularity); used by
/// the synthetic spelling-change pattern and its tests.
size_t EditDistance(std::string_view a, std::string_view b);

}  // namespace sqp

#endif  // SQP_UTIL_EDIT_DISTANCE_H_
