// C ABI surface for the pinned status taxonomy (include/sqp/status.h).
//
// Compiled into both the full `sqp` library and the slim serve-only
// `sqp_slim` library (they are never linked together). Runtime-free on
// purpose: no allocation, no statics with dynamic initializers, no
// exceptions — the slim library's -fno-exceptions/-fno-rtti build and
// C-only link depend on it.

#include "sqp/status.h"

extern "C" const char* sqp_status_name(sqp_status_t status) {
  switch (status) {
#define SQP_STATUS_NAME_CASE(name, value, str) \
  case name:                                   \
    return str;
    SQP_STATUS_CODE_LIST(SQP_STATUS_NAME_CASE)
#undef SQP_STATUS_NAME_CASE
  }
  return "Unknown";
}
