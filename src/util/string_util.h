#ifndef SQP_UTIL_STRING_UTIL_H_
#define SQP_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sqp {

/// Splits `s` on `sep`, keeping empty fields (TSV semantics).
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Splits `s` on runs of whitespace, dropping empty tokens.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);
std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parses a non-negative integer; returns false on any malformed input.
bool ParseUint64(std::string_view s, uint64_t* out);
bool ParseInt64(std::string_view s, int64_t* out);

}  // namespace sqp

#endif  // SQP_UTIL_STRING_UTIL_H_
