#ifndef SQP_UTIL_STATUS_H_
#define SQP_UTIL_STATUS_H_

#include <cstdlib>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "sqp/status.h"

namespace sqp {

/// Error categories used across the library. Mirrors the usual
/// database-engine convention (RocksDB/Arrow style): library code never
/// throws; fallible operations return a Status or Result<T>.
///
/// The numeric values are NOT arbitrary: they are pinned to the canonical
/// C table in include/sqp/status.h, which the net wire protocol persists
/// as u8 codes and the slim embedded ABI compiles into callers. Add new
/// codes by extending SQP_STATUS_CODE_LIST; never renumber.
enum class StatusCode {
  kOk = SQP_STATUS_OK,
  kInvalidArgument = SQP_STATUS_INVALID_ARGUMENT,
  kNotFound = SQP_STATUS_NOT_FOUND,
  kIOError = SQP_STATUS_IO_ERROR,
  kFailedPrecondition = SQP_STATUS_FAILED_PRECONDITION,
  kOutOfRange = SQP_STATUS_OUT_OF_RANGE,
  kInternal = SQP_STATUS_INTERNAL,
  kResourceExhausted = SQP_STATUS_RESOURCE_EXHAUSTED,  // shed by admission
  kDeadlineExceeded = SQP_STATUS_DEADLINE_EXCEEDED,  // expired before/during
  kUnavailable = SQP_STATUS_UNAVAILABLE,  // responsible shard has no snapshot
  kDataLoss = SQP_STATUS_DATA_LOSS,       // corrupt bytes on the wire
};

/// A lightweight success-or-error value. Cheap to copy on the OK path
/// (no allocation); error path stores a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Returns the canonical name of a status code ("OK", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A value-or-error holder, analogous to absl::StatusOr. The error state is
/// expressed with the same Status type used elsewhere.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& detail);
}  // namespace internal

/// CHECK-style invariant assertion for examples, benches and internal
/// sanity checks. Aborts with a location message; never throws.
#define SQP_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::sqp::internal::CheckFailed(__FILE__, __LINE__, #expr, "");     \
    }                                                                  \
  } while (0)

#define SQP_CHECK_OK(status_expr)                                       \
  do {                                                                  \
    const ::sqp::Status _sqp_st = (status_expr);                        \
    if (!_sqp_st.ok()) {                                                \
      ::sqp::internal::CheckFailed(__FILE__, __LINE__, #status_expr,    \
                                   _sqp_st.ToString());                 \
    }                                                                   \
  } while (0)

/// Early-return helper for Status-returning functions.
#define SQP_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::sqp::Status _sqp_st = (expr);            \
    if (!_sqp_st.ok()) return _sqp_st;         \
  } while (0)

}  // namespace sqp

#endif  // SQP_UTIL_STATUS_H_
