#include "util/status.h"

namespace sqp {

std::string_view StatusCodeName(StatusCode code) {
  // One string table for the whole repo: the names come from the same
  // X-macro list (include/sqp/status.h) that pins the C ABI and the wire
  // protocol's u8 codes.
  switch (code) {
#define SQP_STATUS_NAME_CASE(name, value, str) \
  case static_cast<StatusCode>(name):          \
    return str;
    SQP_STATUS_CODE_LIST(SQP_STATUS_NAME_CASE)
#undef SQP_STATUS_NAME_CASE
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& detail) {
  std::fprintf(stderr, "SQP_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               detail.empty() ? "" : " -- ", detail.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace sqp
