#include "util/status.h"

namespace sqp {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& detail) {
  std::fprintf(stderr, "SQP_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               detail.empty() ? "" : " -- ", detail.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace sqp
