#include "log/session_segmenter.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "util/string_util.h"

namespace sqp {

std::string_view SegmentationStrategyName(SegmentationStrategy strategy) {
  switch (strategy) {
    case SegmentationStrategy::kTimeGap:
      return "30-minute rule";
    case SegmentationStrategy::kFixedWindow:
      return "fixed window";
    case SegmentationStrategy::kSimilarityAssisted:
      return "similarity-assisted";
  }
  return "unknown";
}

namespace {

/// True iff the two normalized queries share at least one term.
bool SharesTerm(std::string_view a, std::string_view b) {
  std::unordered_set<std::string_view> terms;
  for (std::string_view term : SplitWhitespace(a)) terms.insert(term);
  for (std::string_view term : SplitWhitespace(b)) {
    if (terms.count(term) > 0) return true;
  }
  return false;
}

}  // namespace

Status SessionSegmenter::Segment(const std::vector<RawLogRecord>& records,
                                 QueryDictionary* dictionary,
                                 std::vector<Session>* sessions) const {
  // Order records by (machine, timestamp) without copying them.
  std::vector<size_t> order(records.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (records[a].machine_id != records[b].machine_id) {
      return records[a].machine_id < records[b].machine_id;
    }
    return records[a].timestamp_ms < records[b].timestamp_ms;
  });

  Session current;
  bool has_current = false;
  int64_t last_activity_ms = 0;
  std::string previous_query;

  auto flush = [&]() {
    if (!has_current) return;
    const bool too_long = options_.max_session_length > 0 &&
                          current.queries.size() > options_.max_session_length;
    if (!current.queries.empty() && !too_long) {
      sessions->push_back(std::move(current));
    }
    current = Session{};
    has_current = false;
  };

  for (size_t idx : order) {
    const RawLogRecord& record = records[idx];
    if (QueryDictionary::Normalize(record.query).empty()) {
      return Status::InvalidArgument("record with empty query");
    }
    for (const UrlClick& click : record.clicks) {
      if (click.timestamp_ms < record.timestamp_ms) {
        return Status::InvalidArgument(StrFormat(
            "click at %lld precedes its query at %lld",
            static_cast<long long>(click.timestamp_ms),
            static_cast<long long>(record.timestamp_ms)));
      }
    }

    const std::string normalized = QueryDictionary::Normalize(record.query);
    const bool new_machine =
        !has_current || record.machine_id != current.machine_id;
    bool cut = false;
    if (has_current && !new_machine) {
      const int64_t gap = record.timestamp_ms - last_activity_ms;
      switch (options_.strategy) {
        case SegmentationStrategy::kTimeGap:
          cut = gap > options_.timeout_ms;
          break;
        case SegmentationStrategy::kFixedWindow:
          cut = record.timestamp_ms - current.start_ms > options_.window_ms;
          break;
        case SegmentationStrategy::kSimilarityAssisted:
          cut = gap > options_.timeout_ms ||
                (gap > options_.soft_timeout_ms &&
                 !SharesTerm(previous_query, normalized));
          break;
      }
    }
    if (new_machine || cut) {
      flush();
      current.machine_id = record.machine_id;
      current.start_ms = record.timestamp_ms;
      has_current = true;
    }

    current.queries.push_back(dictionary->Intern(record.query));
    previous_query = normalized;

    // Last activity is the query itself or its latest click, whichever is
    // later: the 30-minute rule measures idle time since any interaction.
    last_activity_ms = record.timestamp_ms;
    for (const UrlClick& click : record.clicks) {
      last_activity_ms = std::max(last_activity_ms, click.timestamp_ms);
    }
  }
  flush();
  return Status::OK();
}

}  // namespace sqp
