#ifndef SQP_LOG_TYPES_H_
#define SQP_LOG_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sqp {

/// Interned query identifier. Query strings are interned once through
/// QueryDictionary; all downstream processing (sessions, models, metrics)
/// operates on dense 32-bit ids.
using QueryId = uint32_t;

inline constexpr QueryId kInvalidQueryId = 0xffffffffu;

/// One URL click following a query, as recorded by the search front-end.
struct UrlClick {
  int64_t timestamp_ms = 0;
  std::string url;

  bool operator==(const UrlClick&) const = default;
};

/// One raw search-log record: a query issued from a machine plus the clicks
/// it produced (paper Table III).
struct RawLogRecord {
  uint64_t machine_id = 0;
  int64_t timestamp_ms = 0;
  std::string query;
  std::vector<UrlClick> clicks;

  bool operator==(const RawLogRecord&) const = default;
};

/// A segmented user session: consecutive queries from one machine with no
/// activity gap exceeding the segmentation threshold (30-minute rule).
struct Session {
  uint64_t machine_id = 0;
  int64_t start_ms = 0;
  std::vector<QueryId> queries;
};

/// An aggregated session: one unique query sequence together with the number
/// of (machine, time) sessions that produced exactly that sequence.
struct AggregatedSession {
  std::vector<QueryId> queries;
  uint64_t frequency = 0;
};

/// A (context -> next query) candidate with its aggregated support, i.e. the
/// number of sessions in which `next` immediately followed `context`.
struct NextQueryCount {
  QueryId query = kInvalidQueryId;
  uint64_t count = 0;
};

/// All observed continuations of one context, sorted by descending count
/// (ties broken by ascending QueryId for determinism).
struct ContextEntry {
  std::vector<QueryId> context;
  std::vector<NextQueryCount> nexts;
  uint64_t total_count = 0;  // sum of nexts[i].count
  /// Number of occurrences where the context appeared at the very start of a
  /// session (no preceding query). Feeds the VMM escape probability (Eq. 6).
  uint64_t start_count = 0;
};

}  // namespace sqp

#endif  // SQP_LOG_TYPES_H_
