#include "log/log_io.h"

#include "util/string_util.h"

namespace sqp {

Status LogWriter::Open(const std::string& path) {
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  records_written_ = 0;
  return Status::OK();
}

Status LogWriter::Write(const RawLogRecord& record) {
  if (!out_.is_open()) {
    return Status::FailedPrecondition("LogWriter not open");
  }
  if (record.query.find('\t') != std::string::npos ||
      record.query.find('\n') != std::string::npos) {
    return Status::InvalidArgument("query contains tab or newline: " +
                                   record.query);
  }
  out_ << RecordToTsv(record) << '\n';
  if (!out_.good()) return Status::IOError("write failed");
  ++records_written_;
  return Status::OK();
}

Status LogWriter::Close() {
  if (!out_.is_open()) return Status::OK();
  out_.flush();
  const bool good = out_.good();
  out_.close();
  if (!good) return Status::IOError("flush failed on close");
  return Status::OK();
}

Status LogReader::Open(const std::string& path) {
  in_.open(path, std::ios::in);
  if (!in_.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  records_read_ = 0;
  line_number_ = 0;
  return Status::OK();
}

Status LogReader::Read(RawLogRecord* record, bool* eof) {
  if (!in_.is_open()) {
    return Status::FailedPrecondition("LogReader not open");
  }
  std::string line;
  while (std::getline(in_, line)) {
    ++line_number_;
    if (Trim(line).empty()) continue;  // skip blank lines
    Status st = RecordFromTsv(line, record);
    if (!st.ok()) {
      return Status(st.code(), StrFormat("line %zu: ", line_number_) +
                                   st.message());
    }
    ++records_read_;
    *eof = false;
    return Status::OK();
  }
  *eof = true;
  return Status::OK();
}

Status WriteLogFile(const std::string& path,
                    const std::vector<RawLogRecord>& records) {
  LogWriter writer;
  SQP_RETURN_IF_ERROR(writer.Open(path));
  for (const RawLogRecord& r : records) {
    SQP_RETURN_IF_ERROR(writer.Write(r));
  }
  return writer.Close();
}

Status ReadLogFile(const std::string& path,
                   std::vector<RawLogRecord>* records) {
  LogReader reader;
  SQP_RETURN_IF_ERROR(reader.Open(path));
  records->clear();
  while (true) {
    RawLogRecord record;
    bool eof = false;
    SQP_RETURN_IF_ERROR(reader.Read(&record, &eof));
    if (eof) break;
    records->push_back(std::move(record));
  }
  return Status::OK();
}

}  // namespace sqp
