#include "log/session_aggregator.h"

#include <algorithm>

#include "util/hash.h"

namespace sqp {

size_t SessionAggregator::SeqHash::operator()(
    const std::vector<QueryId>& v) const {
  return static_cast<size_t>(HashIdSequence(v));
}

void SessionAggregator::Add(const std::vector<Session>& sessions) {
  for (const Session& s : sessions) AddSession(s);
}

void SessionAggregator::AddSession(const Session& session) {
  if (session.queries.empty()) return;
  ++summary_.num_sessions;
  summary_.num_searches += session.queries.size();
  for (QueryId q : session.queries) unique_queries_.insert(q);
  ++counts_[session.queries];
}

std::vector<AggregatedSession> SessionAggregator::Finish() const {
  std::vector<AggregatedSession> out;
  out.reserve(counts_.size());
  for (const auto& [queries, freq] : counts_) {
    out.push_back(AggregatedSession{queries, freq});
  }
  std::sort(out.begin(), out.end(),
            [](const AggregatedSession& a, const AggregatedSession& b) {
              if (a.frequency != b.frequency) return a.frequency > b.frequency;
              return a.queries < b.queries;
            });
  return out;
}

SessionSummary SessionAggregator::Summary() const {
  SessionSummary s = summary_;
  s.num_unique_queries = unique_queries_.size();
  s.num_unique_sessions = counts_.size();
  return s;
}

}  // namespace sqp
