#ifndef SQP_LOG_LOG_RECORD_H_
#define SQP_LOG_LOG_RECORD_H_

#include <string>
#include <string_view>

#include "log/types.h"
#include "util/status.h"

namespace sqp {

/// Serialization of raw search-log records in the tab-separated layout of
/// the paper's Table III:
///
///   machine_id \t query_timestamp_ms \t query \t num_clicks
///   [ \t click_timestamp_ms \t url ]*
///
/// Queries may contain spaces but not tabs or newlines (enforced on write;
/// rejected on read).
std::string RecordToTsv(const RawLogRecord& record);

/// Parses one TSV line into `record`. On error returns InvalidArgument with
/// a description including the offending field.
Status RecordFromTsv(std::string_view line, RawLogRecord* record);

}  // namespace sqp

#endif  // SQP_LOG_LOG_RECORD_H_
