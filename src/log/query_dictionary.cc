#include "log/query_dictionary.h"

#include <cctype>

#include "util/status.h"
#include "util/string_util.h"

namespace sqp {

std::string QueryDictionary::Normalize(std::string_view query) {
  std::string out;
  out.reserve(query.size());
  bool in_space = false;
  for (char c : Trim(query)) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out += ' ';
    in_space = false;
    out += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

QueryId QueryDictionary::Intern(std::string_view query) {
  std::string norm = Normalize(query);
  auto it = ids_.find(norm);
  if (it != ids_.end()) return it->second;
  const QueryId id = static_cast<QueryId>(texts_.size());
  SQP_CHECK(id != kInvalidQueryId);
  texts_.push_back(norm);
  ids_.emplace(std::move(norm), id);
  return id;
}

std::optional<QueryId> QueryDictionary::Lookup(std::string_view query) const {
  auto it = ids_.find(Normalize(query));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& QueryDictionary::Text(QueryId id) const {
  SQP_CHECK(id < texts_.size());
  return texts_[id];
}

}  // namespace sqp
