#ifndef SQP_LOG_SESSION_SEGMENTER_H_
#define SQP_LOG_SESSION_SEGMENTER_H_

#include <vector>

#include "log/query_dictionary.h"
#include "log/types.h"
#include "util/status.h"

namespace sqp {

/// Session-extraction strategy. The paper adopts the 30-minute rule
/// (Section V-A.2, after White et al.); its related work (Jansen et al.,
/// He & Goker, Ozmutlu) studies alternatives, which we provide for the
/// `ext_segmentation` ablation.
enum class SegmentationStrategy {
  /// Cut when the idle gap since the last activity (query or click)
  /// exceeds `timeout_ms` — the paper's convention.
  kTimeGap,
  /// Cut when the session's total duration exceeds `window_ms`, regardless
  /// of idle gaps (fixed temporal window).
  kFixedWindow,
  /// Time gap assisted by lexical evidence: additionally cut on a *soft*
  /// timeout (`soft_timeout_ms`) when the new query shares no term with the
  /// previous one (a topic shift), following the pattern-assisted session
  /// identification line of work.
  kSimilarityAssisted,
};

std::string_view SegmentationStrategyName(SegmentationStrategy strategy);

/// Options for the session segmenter.
struct SegmenterOptions {
  SegmentationStrategy strategy = SegmentationStrategy::kTimeGap;

  /// A new query starts a new session when more than this much time has
  /// passed since the user's last activity (previous query or latest click).
  int64_t timeout_ms = 30LL * 60 * 1000;

  /// kFixedWindow: maximum session duration.
  int64_t window_ms = 90LL * 60 * 1000;

  /// kSimilarityAssisted: gap beyond which a lexical topic shift cuts.
  int64_t soft_timeout_ms = 10LL * 60 * 1000;

  /// Drop sessions longer than this many queries (0 = keep all). The paper's
  /// data-reduction step discards super-long sessions; we allow doing it at
  /// segmentation time as well for streaming pipelines.
  size_t max_session_length = 0;
};

/// Segments a raw query/click stream into per-user sessions.
///
/// Records are grouped by machine_id and processed in timestamp order within
/// each machine (a stable sort is applied internally, so the input may be
/// interleaved across machines, as real front-end logs are). Each query is
/// interned through `dictionary`.
class SessionSegmenter {
 public:
  explicit SessionSegmenter(SegmenterOptions options = {})
      : options_(options) {}

  /// Segments `records` into sessions, appending to `sessions`.
  /// Returns InvalidArgument if any record has an empty query or a click
  /// timestamp before its query.
  Status Segment(const std::vector<RawLogRecord>& records,
                 QueryDictionary* dictionary,
                 std::vector<Session>* sessions) const;

  const SegmenterOptions& options() const { return options_; }

 private:
  SegmenterOptions options_;
};

}  // namespace sqp

#endif  // SQP_LOG_SESSION_SEGMENTER_H_
