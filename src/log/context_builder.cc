#include "log/context_builder.h"

#include <algorithm>

namespace sqp {
namespace {

/// Sorts next-query counts by descending count, ascending id.
void SortNexts(std::vector<NextQueryCount>* nexts) {
  std::sort(nexts->begin(), nexts->end(),
            [](const NextQueryCount& a, const NextQueryCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.query < b.query;
            });
}

}  // namespace

void ContextIndex::Build(const std::vector<AggregatedSession>& sessions,
                         Mode mode, size_t max_context_length) {
  entries_.clear();
  mode_ = mode;
  max_context_length_ = max_context_length;
  total_occurrences_ = 0;

  // First pass: raw counts per (context, next) in nested maps.
  std::unordered_map<std::vector<QueryId>,
                     std::unordered_map<QueryId, uint64_t>, IdSequenceHash>
      counts;
  std::unordered_map<std::vector<QueryId>, uint64_t, IdSequenceHash>
      start_counts;

  std::vector<QueryId> key;
  for (const AggregatedSession& session : sessions) {
    const std::vector<QueryId>& q = session.queries;
    if (q.size() < 2) continue;  // no prediction evidence
    // `end` indexes the predicted query; the context is q[start..end).
    for (size_t end = 1; end < q.size(); ++end) {
      const size_t max_len =
          max_context_length == 0 ? end : std::min(end, max_context_length);
      if (mode == Mode::kPrefix) {
        // Only the full prefix [0, end).
        if (max_context_length != 0 && end > max_context_length) continue;
        key.assign(q.begin(), q.begin() + static_cast<ptrdiff_t>(end));
        counts[key][q[end]] += session.frequency;
        start_counts[key] += session.frequency;  // prefixes start the session
      } else {
        for (size_t len = 1; len <= max_len; ++len) {
          const size_t start = end - len;
          key.assign(q.begin() + static_cast<ptrdiff_t>(start),
                     q.begin() + static_cast<ptrdiff_t>(end));
          counts[key][q[end]] += session.frequency;
          if (start == 0) start_counts[key] += session.frequency;
        }
      }
    }
  }

  // Second pass: flatten into sorted ContextEntry values.
  entries_.reserve(counts.size());
  for (auto& [context, next_map] : counts) {
    ContextEntry entry;
    entry.context = context;
    entry.nexts.reserve(next_map.size());
    for (const auto& [next, count] : next_map) {
      entry.nexts.push_back(NextQueryCount{next, count});
      entry.total_count += count;
    }
    SortNexts(&entry.nexts);
    auto it = start_counts.find(context);
    entry.start_count = it == start_counts.end() ? 0 : it->second;
    total_occurrences_ += entry.total_count;
    entries_.emplace(context, std::move(entry));
  }
}

const ContextEntry* ContextIndex::Lookup(
    std::span<const QueryId> context) const {
  // unordered_map lookup needs a vector key; this copy is on the cold path
  // (model training / evaluation), not in the online recommendation loop.
  std::vector<QueryId> key(context.begin(), context.end());
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  return &it->second;
}

std::vector<const ContextEntry*> ContextIndex::SortedEntries() const {
  std::vector<const ContextEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [context, entry] : entries_) out.push_back(&entry);
  std::sort(out.begin(), out.end(),
            [](const ContextEntry* a, const ContextEntry* b) {
              if (a->context.size() != b->context.size()) {
                return a->context.size() < b->context.size();
              }
              return a->context < b->context;
            });
  return out;
}

std::vector<GroundTruthEntry> BuildGroundTruth(
    const std::vector<AggregatedSession>& test_sessions, size_t n,
    size_t max_context_length) {
  ContextIndex index;
  index.Build(test_sessions, ContextIndex::Mode::kPrefix, max_context_length);
  std::vector<GroundTruthEntry> out;
  out.reserve(index.size());
  for (const ContextEntry* entry : index.SortedEntries()) {
    GroundTruthEntry gt;
    gt.context = entry->context;
    gt.support = entry->total_count;
    const size_t take = std::min(n, entry->nexts.size());
    gt.ranked_next.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      gt.ranked_next.push_back(entry->nexts[i].query);
    }
    out.push_back(std::move(gt));
  }
  return out;
}

QueryRoles ComputeQueryRoles(const std::vector<AggregatedSession>& sessions) {
  QueryRoles roles;
  for (const AggregatedSession& s : sessions) {
    for (size_t i = 0; i < s.queries.size(); ++i) {
      const QueryId q = s.queries[i];
      roles.seen.insert(q);
      if (s.queries.size() >= 2) roles.in_multi_session.insert(q);
      if (i + 1 < s.queries.size()) roles.at_non_last.insert(q);
    }
  }
  return roles;
}

}  // namespace sqp
