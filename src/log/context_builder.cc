#include "log/context_builder.h"

#include <algorithm>

#include "util/edge_search.h"
#include "util/flat_hash.h"
#include "util/status.h"

namespace sqp {
namespace {

/// Sorts next-query counts by descending count, ascending id.
void SortNexts(std::vector<NextQueryCount>* nexts) {
  std::sort(nexts->begin(), nexts->end(),
            [](const NextQueryCount& a, const NextQueryCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.query < b.query;
            });
}

uint64_t PackKey(int32_t node, QueryId query) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(node)) << 32) | query;
}

}  // namespace

void ContextIndex::Build(const std::vector<AggregatedSession>& sessions,
                         Mode mode, size_t max_context_length) {
  trie_.clear();
  edges_.clear();
  entries_.clear();
  entry_nodes_.clear();
  mode_ = mode;
  max_context_length_ = max_context_length;
  total_occurrences_ = 0;

  trie_.emplace_back();  // root: empty context

  // Single pass over sessions. Child lookup and (context, next) counting run
  // through two flat hash tables keyed by packed (node, query) pairs; node
  // creation appends to the arena. No per-substring key vectors.
  FlatU64Map children(1 << 12);  // (parent, edge query) -> child node id
  FlatU64Map counts(1 << 12);    // (node, next query) -> weighted count

  const auto descend = [&](int32_t from, QueryId q) -> int32_t {
    uint64_t& slot = children[PackKey(from, q)];
    if (slot == 0) {  // node 0 is the root and never a child: 0 = absent
      TrieNode node;
      node.parent = from;
      node.edge = q;
      node.depth = trie_[static_cast<size_t>(from)].depth + 1;
      slot = trie_.size();
      trie_.push_back(node);
    }
    return static_cast<int32_t>(slot);
  };

  for (const AggregatedSession& session : sessions) {
    const std::vector<QueryId>& q = session.queries;
    if (q.size() < 2) continue;  // no prediction evidence
    // `end` indexes the predicted query; the context is q[start..end).
    for (size_t end = 1; end < q.size(); ++end) {
      const size_t max_len =
          max_context_length == 0 ? end : std::min(end, max_context_length);
      if (mode == Mode::kPrefix) {
        // Only the full prefix [0, end), walked newest query first.
        if (max_context_length != 0 && end > max_context_length) continue;
        int32_t node = 0;
        for (size_t back = 0; back < end; ++back) {
          node = descend(node, q[end - 1 - back]);
        }
        counts[PackKey(node, q[end])] += session.frequency;
        trie_[static_cast<size_t>(node)].start_count +=
            session.frequency;  // prefixes start the session
      } else {
        // Each extra length extends the previous walk by one older query,
        // so every substring occurrence costs exactly one trie step.
        int32_t node = 0;
        for (size_t len = 1; len <= max_len; ++len) {
          node = descend(node, q[end - len]);
          counts[PackKey(node, q[end])] += session.frequency;
          if (end == len) {
            trie_[static_cast<size_t>(node)].start_count += session.frequency;
          }
        }
      }
    }
  }

  // Flatten the count table into per-node next lists, grouped by node.
  struct Triple {
    int32_t node;
    QueryId next;
    uint64_t count;
  };
  std::vector<Triple> triples;
  triples.reserve(counts.size());
  counts.ForEach([&](uint64_t key, uint64_t count) {
    triples.push_back(Triple{static_cast<int32_t>(key >> 32),
                             static_cast<QueryId>(key), count});
  });
  std::sort(triples.begin(), triples.end(),
            [](const Triple& a, const Triple& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.next < b.next;
            });

  // Materialize one ContextEntry per counted node. Walking node -> root
  // collects edge labels oldest-first, which is the context orientation.
  entries_.reserve(counts.size() / 2 + 1);
  for (size_t i = 0; i < triples.size();) {
    const int32_t node = triples[i].node;
    ContextEntry entry;
    entry.context.resize(trie_[static_cast<size_t>(node)].depth);
    size_t pos = 0;
    for (int32_t walk = node; walk > 0;
         walk = trie_[static_cast<size_t>(walk)].parent) {
      entry.context[pos++] = trie_[static_cast<size_t>(walk)].edge;
    }
    while (i < triples.size() && triples[i].node == node) {
      entry.nexts.push_back(NextQueryCount{triples[i].next, triples[i].count});
      entry.total_count += triples[i].count;
      ++i;
    }
    SortNexts(&entry.nexts);
    entry.start_count = trie_[static_cast<size_t>(node)].start_count;
    total_occurrences_ += entry.total_count;
    entry_nodes_.push_back(node);
    entries_.push_back(std::move(entry));
  }

  // Canonical (length, lexicographic) entry order, fixed once at build time.
  std::vector<int32_t> order(entries_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int32_t>(i);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    const ContextEntry& ea = entries_[static_cast<size_t>(a)];
    const ContextEntry& eb = entries_[static_cast<size_t>(b)];
    if (ea.context.size() != eb.context.size()) {
      return ea.context.size() < eb.context.size();
    }
    return ea.context < eb.context;
  });
  std::vector<ContextEntry> sorted_entries;
  std::vector<int32_t> sorted_nodes;
  sorted_entries.reserve(entries_.size());
  sorted_nodes.reserve(entries_.size());
  for (int32_t idx : order) {
    sorted_entries.push_back(std::move(entries_[static_cast<size_t>(idx)]));
    sorted_nodes.push_back(entry_nodes_[static_cast<size_t>(idx)]);
  }
  entries_ = std::move(sorted_entries);
  entry_nodes_ = std::move(sorted_nodes);
  for (size_t i = 0; i < entry_nodes_.size(); ++i) {
    trie_[static_cast<size_t>(entry_nodes_[i])].entry = static_cast<int32_t>(i);
  }

  // CSR child arrays, query-sorted per node, derived from the parent links
  // (independent of hash-table layout, hence deterministic by construction).
  std::vector<TrieEdge> all_edges;
  all_edges.reserve(trie_.size() - 1);
  std::vector<int32_t> edge_parent;
  edge_parent.reserve(trie_.size() - 1);
  std::vector<int32_t> edge_order(trie_.size() > 0 ? trie_.size() - 1 : 0);
  for (size_t i = 1; i < trie_.size(); ++i) {
    all_edges.push_back(TrieEdge{trie_[i].edge, static_cast<int32_t>(i)});
    edge_parent.push_back(trie_[i].parent);
    edge_order[i - 1] = static_cast<int32_t>(i - 1);
  }
  std::sort(edge_order.begin(), edge_order.end(), [&](int32_t a, int32_t b) {
    if (edge_parent[static_cast<size_t>(a)] !=
        edge_parent[static_cast<size_t>(b)]) {
      return edge_parent[static_cast<size_t>(a)] <
             edge_parent[static_cast<size_t>(b)];
    }
    return all_edges[static_cast<size_t>(a)].query <
           all_edges[static_cast<size_t>(b)].query;
  });
  edges_.reserve(all_edges.size());
  for (size_t i = 0; i < edge_order.size();) {
    const int32_t parent = edge_parent[static_cast<size_t>(edge_order[i])];
    TrieNode& parent_node = trie_[static_cast<size_t>(parent)];
    parent_node.edges_begin = static_cast<uint32_t>(edges_.size());
    while (i < edge_order.size() &&
           edge_parent[static_cast<size_t>(edge_order[i])] == parent) {
      edges_.push_back(all_edges[static_cast<size_t>(edge_order[i])]);
      ++i;
    }
    parent_node.edges_end = static_cast<uint32_t>(edges_.size());
  }
}

int32_t ContextIndex::FindChild(int32_t node, QueryId query) const {
  const std::span<const TrieEdge> kids = trie_children(node);
  const int32_t at = FindEdgeIndex(kids, query);
  return at < 0 ? -1 : kids[static_cast<size_t>(at)].node;
}

const ContextEntry* ContextIndex::Lookup(
    std::span<const QueryId> context) const {
  if (context.empty() || trie_.empty()) return nullptr;
  int32_t node = 0;
  for (size_t back = 0; back < context.size(); ++back) {
    node = FindChild(node, context[context.size() - 1 - back]);
    if (node < 0) return nullptr;
  }
  return entry_at(node);
}

std::vector<const ContextEntry*> ContextIndex::SortedEntries() const {
  std::vector<const ContextEntry*> out;
  out.reserve(entries_.size());
  for (const ContextEntry& entry : entries_) out.push_back(&entry);
  return out;
}

std::vector<GroundTruthEntry> BuildGroundTruth(
    const std::vector<AggregatedSession>& test_sessions, size_t n,
    size_t max_context_length) {
  ContextIndex index;
  index.Build(test_sessions, ContextIndex::Mode::kPrefix, max_context_length);
  std::vector<GroundTruthEntry> out;
  out.reserve(index.size());
  for (const ContextEntry* entry : index.SortedEntries()) {
    GroundTruthEntry gt;
    gt.context = entry->context;
    gt.support = entry->total_count;
    const size_t take = std::min(n, entry->nexts.size());
    gt.ranked_next.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      gt.ranked_next.push_back(entry->nexts[i].query);
    }
    out.push_back(std::move(gt));
  }
  return out;
}

QueryRoles ComputeQueryRoles(const std::vector<AggregatedSession>& sessions) {
  QueryRoles roles;
  for (const AggregatedSession& s : sessions) {
    for (size_t i = 0; i < s.queries.size(); ++i) {
      const QueryId q = s.queries[i];
      roles.seen.insert(q);
      if (s.queries.size() >= 2) roles.in_multi_session.insert(q);
      if (i + 1 < s.queries.size()) roles.at_non_last.insert(q);
    }
  }
  return roles;
}

}  // namespace sqp
