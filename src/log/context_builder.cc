#include "log/context_builder.h"

#include <algorithm>
#include <thread>

#include "util/edge_search.h"
#include "util/status.h"

namespace sqp {
namespace {

/// Sorts next-query counts by descending count, ascending id.
void SortNexts(std::vector<NextQueryCount>* nexts) {
  std::sort(nexts->begin(), nexts->end(),
            [](const NextQueryCount& a, const NextQueryCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.query < b.query;
            });
}

uint64_t PackKey(int32_t node, QueryId query) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(node)) << 32) | query;
}

/// The single counting pass shared by the main-trie and per-shard counters.
/// `descend(node, q)` walks/creates the child edge, `count(node, next, f)`
/// accumulates a weighted continuation, `start(node, f)` a session-start
/// occurrence.
template <typename DescendFn, typename CountFn, typename StartFn>
void CountPass(std::span<const AggregatedSession> sessions,
               ContextIndex::Mode mode, size_t max_context_length,
               DescendFn&& descend, CountFn&& count, StartFn&& start) {
  for (const AggregatedSession& session : sessions) {
    const std::vector<QueryId>& q = session.queries;
    if (q.size() < 2) continue;  // no prediction evidence
    // `end` indexes the predicted query; the context is q[start..end).
    for (size_t end = 1; end < q.size(); ++end) {
      const size_t max_len =
          max_context_length == 0 ? end : std::min(end, max_context_length);
      if (mode == ContextIndex::Mode::kPrefix) {
        // Only the full prefix [0, end), walked newest query first.
        if (max_context_length != 0 && end > max_context_length) continue;
        int32_t node = 0;
        for (size_t back = 0; back < end; ++back) {
          node = descend(node, q[end - 1 - back]);
        }
        count(node, q[end], session.frequency);
        start(node, session.frequency);  // prefixes start the session
      } else {
        // Each extra length extends the previous walk by one older query,
        // so every substring occurrence costs exactly one trie step.
        int32_t node = 0;
        for (size_t len = 1; len <= max_len; ++len) {
          node = descend(node, q[end - len]);
          count(node, q[end], session.frequency);
          if (end == len) start(node, session.frequency);
        }
      }
    }
  }
}

}  // namespace

int32_t ContextIndex::DescendIn(std::vector<TrieNode>* trie,
                                FlatU64Map* children, int32_t from,
                                QueryId q) {
  uint64_t& slot = (*children)[PackKey(from, q)];
  if (slot == 0) {  // node 0 is the root and never a child: 0 = absent
    TrieNode node;
    node.parent = from;
    node.edge = q;
    node.depth = (*trie)[static_cast<size_t>(from)].depth + 1;
    slot = trie->size();
    trie->push_back(node);
  }
  return static_cast<int32_t>(slot);
}

void ContextIndex::CountSessions(std::span<const AggregatedSession> sessions) {
  CountPass(
      sessions, mode_, max_context_length_,
      [this](int32_t node, QueryId q) { return Descend(node, q); },
      [this](int32_t node, QueryId next, uint64_t frequency) {
        counts_[PackKey(node, next)] += frequency;
      },
      [this](int32_t node, uint64_t frequency) {
        trie_[static_cast<size_t>(node)].start_count += frequency;
      });
}

void ContextIndex::CountSessionsSharded(
    const std::vector<AggregatedSession>& sessions, size_t num_workers) {
  const size_t workers =
      std::max<size_t>(1, std::min(num_workers, sessions.size()));
  std::vector<CountShard> shards(workers);
  const size_t block = (sessions.size() + workers - 1) / workers;
  const auto count_shard = [&](size_t w) {
    CountShard& shard = shards[w];
    shard.trie.emplace_back();  // local root
    const size_t begin = w * block;
    const size_t end = std::min(sessions.size(), begin + block);
    const auto descend = [&shard](int32_t from, QueryId q) {
      return DescendIn(&shard.trie, &shard.children, from, q);
    };
    CountPass(
        std::span<const AggregatedSession>(sessions.data() + begin,
                                           end - begin),
        mode_, max_context_length_, descend,
        [&shard](int32_t node, QueryId next, uint64_t frequency) {
          shard.counts[PackKey(node, next)] += frequency;
        },
        [&shard](int32_t node, uint64_t frequency) {
          shard.trie[static_cast<size_t>(node)].start_count += frequency;
        });
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    threads.emplace_back(count_shard, w);
  }
  count_shard(0);
  for (std::thread& thread : threads) thread.join();
  // Sequential merge in worker order: addition is associative and
  // commutative, so the merged counts equal the single-threaded pass no
  // matter how the sessions were sharded.
  for (const CountShard& shard : shards) MergeShard(shard);
}

void ContextIndex::MergeShard(const CountShard& shard) {
  std::vector<int32_t> to_global(shard.trie.size(), -1);
  to_global[0] = 0;
  trie_[0].start_count += shard.trie[0].start_count;
  for (size_t i = 1; i < shard.trie.size(); ++i) {
    // Local parents precede their children (insertion order), so the
    // parent's global id is already known.
    const TrieNode& local = shard.trie[i];
    const int32_t global =
        Descend(to_global[static_cast<size_t>(local.parent)], local.edge);
    trie_[static_cast<size_t>(global)].start_count += local.start_count;
    to_global[i] = global;
  }
  shard.counts.ForEach([&](uint64_t key, uint64_t count) {
    const int32_t node = to_global[static_cast<size_t>(key >> 32)];
    counts_[PackKey(node, static_cast<QueryId>(key))] += count;
  });
}

void ContextIndex::Build(const std::vector<AggregatedSession>& sessions,
                         Mode mode, size_t max_context_length,
                         size_t num_workers) {
  trie_.clear();
  edges_.clear();
  entries_.clear();
  entry_nodes_.clear();
  children_.Reset();
  counts_.Reset();
  mode_ = mode;
  max_context_length_ = max_context_length;
  total_occurrences_ = 0;

  trie_.emplace_back();  // root: empty context

  if (num_workers > 1 && sessions.size() > 1) {
    CountSessionsSharded(sessions, num_workers);
  } else {
    CountSessions(sessions);
  }
  Finalize();
  built_ = true;
}

void ContextIndex::Append(const std::vector<AggregatedSession>& sessions,
                          size_t num_workers) {
  SQP_CHECK(built_);  // Append extends an existing Build
  if (sessions.empty()) return;
  if (num_workers > 1 && sessions.size() > 1) {
    CountSessionsSharded(sessions, num_workers);
  } else {
    CountSessions(sessions);
  }
  Finalize();
}

void ContextIndex::Finalize() {
  entries_.clear();
  entry_nodes_.clear();
  edges_.clear();
  total_occurrences_ = 0;
  for (TrieNode& node : trie_) {
    node.entry = -1;
    node.edges_begin = 0;
    node.edges_end = 0;
  }

  // Flatten the count table into per-node next lists, grouped by node.
  struct Triple {
    int32_t node;
    QueryId next;
    uint64_t count;
  };
  std::vector<Triple> triples;
  triples.reserve(counts_.size());
  counts_.ForEach([&](uint64_t key, uint64_t count) {
    triples.push_back(Triple{static_cast<int32_t>(key >> 32),
                             static_cast<QueryId>(key), count});
  });
  std::sort(triples.begin(), triples.end(),
            [](const Triple& a, const Triple& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.next < b.next;
            });

  // Materialize one ContextEntry per counted node. Walking node -> root
  // collects edge labels oldest-first, which is the context orientation.
  entries_.reserve(counts_.size() / 2 + 1);
  for (size_t i = 0; i < triples.size();) {
    const int32_t node = triples[i].node;
    ContextEntry entry;
    entry.context.resize(trie_[static_cast<size_t>(node)].depth);
    size_t pos = 0;
    for (int32_t walk = node; walk > 0;
         walk = trie_[static_cast<size_t>(walk)].parent) {
      entry.context[pos++] = trie_[static_cast<size_t>(walk)].edge;
    }
    while (i < triples.size() && triples[i].node == node) {
      entry.nexts.push_back(NextQueryCount{triples[i].next, triples[i].count});
      entry.total_count += triples[i].count;
      ++i;
    }
    SortNexts(&entry.nexts);
    entry.start_count = trie_[static_cast<size_t>(node)].start_count;
    total_occurrences_ += entry.total_count;
    entry_nodes_.push_back(node);
    entries_.push_back(std::move(entry));
  }

  // Canonical (length, lexicographic) entry order, fixed once at build time.
  // Contexts are unique, so the order (and with it every downstream
  // structure, e.g. a PST built from the sorted entries) is independent of
  // trie node numbering — and therefore of the counting worker count.
  std::vector<int32_t> order(entries_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int32_t>(i);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    const ContextEntry& ea = entries_[static_cast<size_t>(a)];
    const ContextEntry& eb = entries_[static_cast<size_t>(b)];
    if (ea.context.size() != eb.context.size()) {
      return ea.context.size() < eb.context.size();
    }
    return ea.context < eb.context;
  });
  std::vector<ContextEntry> sorted_entries;
  std::vector<int32_t> sorted_nodes;
  sorted_entries.reserve(entries_.size());
  sorted_nodes.reserve(entries_.size());
  for (int32_t idx : order) {
    sorted_entries.push_back(std::move(entries_[static_cast<size_t>(idx)]));
    sorted_nodes.push_back(entry_nodes_[static_cast<size_t>(idx)]);
  }
  entries_ = std::move(sorted_entries);
  entry_nodes_ = std::move(sorted_nodes);
  for (size_t i = 0; i < entry_nodes_.size(); ++i) {
    trie_[static_cast<size_t>(entry_nodes_[i])].entry = static_cast<int32_t>(i);
  }

  // CSR child arrays, query-sorted per node, derived from the parent links
  // (independent of hash-table layout, hence deterministic by construction).
  std::vector<TrieEdge> all_edges;
  all_edges.reserve(trie_.size() - 1);
  std::vector<int32_t> edge_parent;
  edge_parent.reserve(trie_.size() - 1);
  std::vector<int32_t> edge_order(trie_.size() > 0 ? trie_.size() - 1 : 0);
  for (size_t i = 1; i < trie_.size(); ++i) {
    all_edges.push_back(TrieEdge{trie_[i].edge, static_cast<int32_t>(i)});
    edge_parent.push_back(trie_[i].parent);
    edge_order[i - 1] = static_cast<int32_t>(i - 1);
  }
  std::sort(edge_order.begin(), edge_order.end(), [&](int32_t a, int32_t b) {
    if (edge_parent[static_cast<size_t>(a)] !=
        edge_parent[static_cast<size_t>(b)]) {
      return edge_parent[static_cast<size_t>(a)] <
             edge_parent[static_cast<size_t>(b)];
    }
    return all_edges[static_cast<size_t>(a)].query <
           all_edges[static_cast<size_t>(b)].query;
  });
  edges_.reserve(all_edges.size());
  for (size_t i = 0; i < edge_order.size();) {
    const int32_t parent = edge_parent[static_cast<size_t>(edge_order[i])];
    TrieNode& parent_node = trie_[static_cast<size_t>(parent)];
    parent_node.edges_begin = static_cast<uint32_t>(edges_.size());
    while (i < edge_order.size() &&
           edge_parent[static_cast<size_t>(edge_order[i])] == parent) {
      edges_.push_back(all_edges[static_cast<size_t>(edge_order[i])]);
      ++i;
    }
    parent_node.edges_end = static_cast<uint32_t>(edges_.size());
  }
}

int32_t ContextIndex::FindChild(int32_t node, QueryId query) const {
  const std::span<const TrieEdge> kids = trie_children(node);
  const int32_t at = FindEdgeIndex(kids, query);
  return at < 0 ? -1 : kids[static_cast<size_t>(at)].node;
}

const ContextEntry* ContextIndex::Lookup(
    std::span<const QueryId> context) const {
  if (context.empty() || trie_.empty()) return nullptr;
  int32_t node = 0;
  for (size_t back = 0; back < context.size(); ++back) {
    node = FindChild(node, context[context.size() - 1 - back]);
    if (node < 0) return nullptr;
  }
  return entry_at(node);
}

std::vector<const ContextEntry*> ContextIndex::SortedEntries() const {
  std::vector<const ContextEntry*> out;
  out.reserve(entries_.size());
  for (const ContextEntry& entry : entries_) out.push_back(&entry);
  return out;
}

std::vector<GroundTruthEntry> BuildGroundTruth(
    const std::vector<AggregatedSession>& test_sessions, size_t n,
    size_t max_context_length) {
  ContextIndex index;
  index.Build(test_sessions, ContextIndex::Mode::kPrefix, max_context_length);
  std::vector<GroundTruthEntry> out;
  out.reserve(index.size());
  for (const ContextEntry* entry : index.SortedEntries()) {
    GroundTruthEntry gt;
    gt.context = entry->context;
    gt.support = entry->total_count;
    const size_t take = std::min(n, entry->nexts.size());
    gt.ranked_next.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      gt.ranked_next.push_back(entry->nexts[i].query);
    }
    out.push_back(std::move(gt));
  }
  return out;
}

QueryRoles ComputeQueryRoles(const std::vector<AggregatedSession>& sessions) {
  QueryRoles roles;
  for (const AggregatedSession& s : sessions) {
    for (size_t i = 0; i < s.queries.size(); ++i) {
      const QueryId q = s.queries[i];
      roles.seen.insert(q);
      if (s.queries.size() >= 2) roles.in_multi_session.insert(q);
      if (i + 1 < s.queries.size()) roles.at_non_last.insert(q);
    }
  }
  return roles;
}

}  // namespace sqp
