#ifndef SQP_LOG_SESSION_AGGREGATOR_H_
#define SQP_LOG_SESSION_AGGREGATOR_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "log/types.h"

namespace sqp {

/// Corpus-level statistics in the shape of the paper's Table IV.
struct SessionSummary {
  uint64_t num_sessions = 0;        // before aggregation
  uint64_t num_searches = 0;        // total queries across sessions
  uint64_t num_unique_queries = 0;  // distinct QueryIds observed
  uint64_t num_unique_sessions = 0; // after aggregation
};

/// Aggregates identical query sequences across users (paper Section V-A.3):
/// sessions with exactly the same query sequence are merged into one
/// AggregatedSession carrying the merged frequency.
///
/// Output ordering is deterministic: descending frequency, ties broken by
/// lexicographic query-id sequence.
class SessionAggregator {
 public:
  SessionAggregator() = default;

  /// Adds a batch of segmented sessions.
  void Add(const std::vector<Session>& sessions);

  /// Adds a single session.
  void AddSession(const Session& session);

  /// Returns the aggregate and summary; the aggregator can keep receiving
  /// sessions afterwards (Finish is non-destructive).
  std::vector<AggregatedSession> Finish() const;
  SessionSummary Summary() const;

 private:
  struct SeqHash {
    size_t operator()(const std::vector<QueryId>& v) const;
  };
  std::unordered_map<std::vector<QueryId>, uint64_t, SeqHash> counts_;
  SessionSummary summary_;
  std::unordered_set<QueryId> unique_queries_;
};

}  // namespace sqp

#endif  // SQP_LOG_SESSION_AGGREGATOR_H_
