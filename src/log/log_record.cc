#include "log/log_record.h"

#include "util/string_util.h"

namespace sqp {

std::string RecordToTsv(const RawLogRecord& record) {
  std::string out = StrFormat("%llu\t%lld\t",
                              static_cast<unsigned long long>(record.machine_id),
                              static_cast<long long>(record.timestamp_ms));
  out += record.query;
  out += StrFormat("\t%zu", record.clicks.size());
  for (const UrlClick& click : record.clicks) {
    out += StrFormat("\t%lld\t", static_cast<long long>(click.timestamp_ms));
    out += click.url;
  }
  return out;
}

Status RecordFromTsv(std::string_view line, RawLogRecord* record) {
  const std::vector<std::string_view> fields = Split(line, '\t');
  if (fields.size() < 4) {
    return Status::InvalidArgument(
        StrFormat("log record has %zu fields, expected >= 4", fields.size()));
  }
  RawLogRecord out;
  if (!ParseUint64(fields[0], &out.machine_id)) {
    return Status::InvalidArgument("bad machine_id field: " +
                                   std::string(fields[0]));
  }
  if (!ParseInt64(fields[1], &out.timestamp_ms)) {
    return Status::InvalidArgument("bad timestamp field: " +
                                   std::string(fields[1]));
  }
  out.query = std::string(fields[2]);
  if (out.query.empty()) {
    return Status::InvalidArgument("empty query field");
  }
  uint64_t num_clicks = 0;
  if (!ParseUint64(fields[3], &num_clicks)) {
    return Status::InvalidArgument("bad click count field: " +
                                   std::string(fields[3]));
  }
  if (fields.size() != 4 + 2 * num_clicks) {
    return Status::InvalidArgument(
        StrFormat("record declares %llu clicks but has %zu fields",
                  static_cast<unsigned long long>(num_clicks), fields.size()));
  }
  out.clicks.reserve(num_clicks);
  for (uint64_t i = 0; i < num_clicks; ++i) {
    UrlClick click;
    if (!ParseInt64(fields[4 + 2 * i], &click.timestamp_ms)) {
      return Status::InvalidArgument("bad click timestamp field");
    }
    click.url = std::string(fields[5 + 2 * i]);
    if (click.url.empty()) {
      return Status::InvalidArgument("empty click url field");
    }
    out.clicks.push_back(std::move(click));
  }
  *record = std::move(out);
  return Status::OK();
}

}  // namespace sqp
