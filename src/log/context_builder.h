#ifndef SQP_LOG_CONTEXT_BUILDER_H_
#define SQP_LOG_CONTEXT_BUILDER_H_

#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "log/types.h"
#include "util/hash.h"

namespace sqp {

/// An index of (context -> next-query counts), built from aggregated
/// sessions. Two construction modes:
///
///  * kPrefix: a context occurrence is a *session prefix* [q1..qk] followed
///    by q_{k+1} (paper Section V-A.5, "aggregating training contexts").
///    This is what the variable-length N-gram trains on and what test-side
///    ground truth is built from.
///
///  * kSubstring: a context occurrence is any *contiguous* subsequence
///    followed by a query (the counting used in the paper's PST example,
///    Table II / Fig. 3, where e.g. P(q0|q0) pools every position at which
///    q0 precedes another query). This is what Adjacency (length-1) and the
///    PST/VMM family train on.
///
/// Every occurrence is weighted by the aggregated session frequency.
class ContextIndex {
 public:
  enum class Mode { kPrefix, kSubstring };

  ContextIndex() = default;

  /// Builds the index. `max_context_length` bounds the indexed context
  /// length (0 = unbounded). Existing contents are discarded.
  void Build(const std::vector<AggregatedSession>& sessions, Mode mode,
             size_t max_context_length = 0);

  /// Returns the entry for `context`, or nullptr if unseen.
  const ContextEntry* Lookup(std::span<const QueryId> context) const;

  /// All entries in deterministic order (by context length, then
  /// lexicographic context).
  std::vector<const ContextEntry*> SortedEntries() const;

  size_t size() const { return entries_.size(); }
  Mode mode() const { return mode_; }
  size_t max_context_length() const { return max_context_length_; }

  /// Total weighted context occurrences (sum over entries of total_count).
  uint64_t total_occurrences() const { return total_occurrences_; }

 private:
  std::unordered_map<std::vector<QueryId>, ContextEntry, IdSequenceHash>
      entries_;
  Mode mode_ = Mode::kPrefix;
  size_t max_context_length_ = 0;
  uint64_t total_occurrences_ = 0;
};

/// Ground truth for one test context: the queries observed to follow it in
/// the test period, ranked by frequency. ratings[j] = n - j for the j-th
/// ranked query (5,4,3,2,1 for n=5), per the paper's NDCG setup.
struct GroundTruthEntry {
  std::vector<QueryId> context;
  std::vector<QueryId> ranked_next;  // size <= n
  uint64_t support = 0;              // weighted occurrences of the context
};

/// Builds test-side ground truth from test aggregated sessions: for every
/// prefix context, the top `n` next queries by frequency (paper
/// Section V-A.6). Deterministic ordering as in ContextIndex.
std::vector<GroundTruthEntry> BuildGroundTruth(
    const std::vector<AggregatedSession>& test_sessions, size_t n,
    size_t max_context_length = 0);

/// Per-query structural roles in the training corpus, used to classify
/// unpredictable test queries (paper Table VI).
struct QueryRoles {
  std::unordered_set<QueryId> seen;              // appears anywhere
  std::unordered_set<QueryId> in_multi_session;  // in a session of length >= 2
  std::unordered_set<QueryId> at_non_last;       // at a non-final position
};

QueryRoles ComputeQueryRoles(const std::vector<AggregatedSession>& sessions);

}  // namespace sqp

#endif  // SQP_LOG_CONTEXT_BUILDER_H_
