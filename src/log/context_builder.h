#ifndef SQP_LOG_CONTEXT_BUILDER_H_
#define SQP_LOG_CONTEXT_BUILDER_H_

#include <span>
#include <unordered_set>
#include <vector>

#include "log/types.h"
#include "util/flat_hash.h"

namespace sqp {

/// An index of (context -> next-query counts), built from aggregated
/// sessions. Two construction modes:
///
///  * kPrefix: a context occurrence is a *session prefix* [q1..qk] followed
///    by q_{k+1} (paper Section V-A.5, "aggregating training contexts").
///    This is what the variable-length N-gram trains on and what test-side
///    ground truth is built from.
///
///  * kSubstring: a context occurrence is any *contiguous* subsequence
///    followed by a query (the counting used in the paper's PST example,
///    Table II / Fig. 3, where e.g. P(q0|q0) pools every position at which
///    q0 precedes another query). This is what Adjacency (length-1) and the
///    PST/VMM family train on.
///
/// Every occurrence is weighted by the aggregated session frequency.
///
/// Storage is an arena-backed suffix trie keyed most-recent-query-first: one
/// contiguous node pool, contexts identified by node index, counts
/// accumulated in a single pass over sessions through flat (node, query)
/// hash tables — no per-substring key vectors or per-substring allocations.
/// Because the trie reads contexts newest-first, a node's trie parent is its
/// context minus the *oldest* query, which is exactly the PST parent
/// relation; Pst construction walks this trie directly.
class ContextIndex {
 public:
  enum class Mode { kPrefix, kSubstring };

  /// One labeled child edge in the arena trie. The edges of a node are
  /// contiguous and sorted by `query` ascending.
  struct TrieEdge {
    QueryId query = kInvalidQueryId;
    int32_t node = 0;
  };

  ContextIndex() = default;

  /// Builds the index. `max_context_length` bounds the indexed context
  /// length (0 = unbounded). Existing contents are discarded.
  ///
  /// `num_workers` > 1 shards the counting pass across that many threads:
  /// each worker counts a contiguous block of sessions into its own arena
  /// trie + flat tables, and the per-worker tables are merged associatively.
  /// The resulting index is equivalent for every worker count — entries,
  /// counts, lookups and any PST built from it are bit-identical; only the
  /// internal trie node numbering may differ.
  void Build(const std::vector<AggregatedSession>& sessions, Mode mode,
             size_t max_context_length = 0, size_t num_workers = 1);

  /// Extends an already-built index with additional sessions, preserving the
  /// construction mode and depth bound. Counting touches only the appended
  /// sessions (the persistent count tables absorb them); the entry list and
  /// child arrays are then re-finalized. Equivalent to a from-scratch Build
  /// over the concatenation of every session batch seen so far. Requires a
  /// prior Build.
  void Append(const std::vector<AggregatedSession>& sessions,
              size_t num_workers = 1);

  /// Returns the entry for `context`, or nullptr if unseen. Walks the trie;
  /// no key materialization.
  const ContextEntry* Lookup(std::span<const QueryId> context) const;

  /// All entries in deterministic order (by context length, then
  /// lexicographic context). The order is precomputed at Build time.
  std::vector<const ContextEntry*> SortedEntries() const;

  size_t size() const { return entries_.size(); }
  Mode mode() const { return mode_; }
  size_t max_context_length() const { return max_context_length_; }

  /// True iff this index can seed a substring-counted model needing
  /// contexts up to `need_depth` (0 = unbounded): substring mode and at
  /// least as deep. The single definition of "compatible shared index"
  /// used by VMM and MVMM training.
  bool CoversSubstringDepth(size_t need_depth) const {
    return mode_ == Mode::kSubstring &&
           (max_context_length_ == 0 ||
            (need_depth > 0 && max_context_length_ >= need_depth));
  }

  /// Total weighted context occurrences (sum over entries of total_count).
  uint64_t total_occurrences() const { return total_occurrences_; }

  // ----- Arena-trie accessors (allocation-free hot path for PST builds) ---

  /// Number of trie nodes including the synthetic root (node 0, empty
  /// context). Some nodes carry no entry (kPrefix interior nodes).
  size_t num_trie_nodes() const { return trie_.size(); }

  /// Trie parent of `node` (-1 for the root): the node's context minus its
  /// oldest query.
  int32_t trie_parent(int32_t node) const {
    return trie_[static_cast<size_t>(node)].parent;
  }

  /// Context length of the node (0 for the root).
  uint32_t trie_depth(int32_t node) const {
    return trie_[static_cast<size_t>(node)].depth;
  }

  /// Child edges of `node`, sorted by query ascending.
  std::span<const TrieEdge> trie_children(int32_t node) const {
    const TrieNode& n = trie_[static_cast<size_t>(node)];
    return std::span<const TrieEdge>(edges_.data() + n.edges_begin,
                                     n.edges_end - n.edges_begin);
  }

  /// Entry stored at a trie node; nullptr for the root and for auxiliary
  /// nodes that never accumulated counts.
  const ContextEntry* entry_at(int32_t node) const {
    const int32_t e = trie_[static_cast<size_t>(node)].entry;
    return e < 0 ? nullptr : &entries_[static_cast<size_t>(e)];
  }

  /// Entry `i` in the (length, lexicographic) sorted order, and the trie
  /// node it lives at. `i` < size().
  const ContextEntry& sorted_entry(size_t i) const { return entries_[i]; }
  int32_t sorted_entry_node(size_t i) const { return entry_nodes_[i]; }

 private:
  struct TrieNode {
    int32_t parent = -1;
    QueryId edge = kInvalidQueryId;  // label on the edge from the parent
    uint32_t depth = 0;
    int32_t entry = -1;       // index into entries_, -1 if none
    uint64_t start_count = 0;  // weighted occurrences at session start
    uint32_t edges_begin = 0;
    uint32_t edges_end = 0;
  };

  /// One worker's partial count over a session shard: a private arena trie
  /// plus private flat tables, merged into the main structures afterwards.
  struct CountShard {
    std::vector<TrieNode> trie;
    FlatU64Map children;
    FlatU64Map counts;
  };

  int32_t FindChild(int32_t node, QueryId query) const;

  /// Walks (creating on demand) the child of `from` along `q` in the given
  /// arena trie, mirrored in its (parent, query) -> child table. The single
  /// definition of node creation, shared by the main trie and the
  /// per-worker shards so their invariants cannot drift.
  static int32_t DescendIn(std::vector<TrieNode>* trie, FlatU64Map* children,
                           int32_t from, QueryId q);

  /// DescendIn over the main trie and the persistent `children_` table.
  int32_t Descend(int32_t from, QueryId q) {
    return DescendIn(&trie_, &children_, from, q);
  }

  /// Counts `sessions` into the main trie + persistent tables
  /// (single-threaded) or into per-worker shards merged afterwards.
  void CountSessions(std::span<const AggregatedSession> sessions);
  void CountSessionsSharded(const std::vector<AggregatedSession>& sessions,
                            size_t num_workers);
  void MergeShard(const CountShard& shard);

  /// Rebuilds entries_/entry_nodes_/CSR edges/total_occurrences_ from the
  /// main trie and the persistent count table. Idempotent; called after
  /// every counting pass (Build and Append).
  void Finalize();

  std::vector<TrieNode> trie_;
  std::vector<TrieEdge> edges_;        // CSR child arrays, query-sorted
  std::vector<ContextEntry> entries_;  // sorted by (length, lex context)
  std::vector<int32_t> entry_nodes_;   // entries_[i] lives at this trie node
  /// Persistent counting state, kept alive so Append can extend the index
  /// without re-counting old sessions.
  FlatU64Map children_;  // (parent node, edge query) -> child node id
  FlatU64Map counts_;    // (node, next query) -> weighted count
  Mode mode_ = Mode::kPrefix;
  size_t max_context_length_ = 0;
  uint64_t total_occurrences_ = 0;
  bool built_ = false;
};

/// Ground truth for one test context: the queries observed to follow it in
/// the test period, ranked by frequency. ratings[j] = n - j for the j-th
/// ranked query (5,4,3,2,1 for n=5), per the paper's NDCG setup.
struct GroundTruthEntry {
  std::vector<QueryId> context;
  std::vector<QueryId> ranked_next;  // size <= n
  uint64_t support = 0;              // weighted occurrences of the context
};

/// Builds test-side ground truth from test aggregated sessions: for every
/// prefix context, the top `n` next queries by frequency (paper
/// Section V-A.6). Deterministic ordering as in ContextIndex.
std::vector<GroundTruthEntry> BuildGroundTruth(
    const std::vector<AggregatedSession>& test_sessions, size_t n,
    size_t max_context_length = 0);

/// Per-query structural roles in the training corpus, used to classify
/// unpredictable test queries (paper Table VI).
struct QueryRoles {
  std::unordered_set<QueryId> seen;              // appears anywhere
  std::unordered_set<QueryId> in_multi_session;  // in a session of length >= 2
  std::unordered_set<QueryId> at_non_last;       // at a non-final position
};

QueryRoles ComputeQueryRoles(const std::vector<AggregatedSession>& sessions);

}  // namespace sqp

#endif  // SQP_LOG_CONTEXT_BUILDER_H_
