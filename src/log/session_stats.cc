#include "log/session_stats.h"

#include "util/math_util.h"

namespace sqp {

std::map<size_t, uint64_t> SessionLengthHistogram(
    const std::vector<AggregatedSession>& sessions) {
  std::map<size_t, uint64_t> hist;
  for (const AggregatedSession& s : sessions) {
    hist[s.queries.size()] += s.frequency;
  }
  return hist;
}

std::map<uint64_t, uint64_t> SessionFrequencyHistogram(
    const std::vector<AggregatedSession>& sessions) {
  std::map<uint64_t, uint64_t> hist;
  for (const AggregatedSession& s : sessions) {
    ++hist[s.frequency];
  }
  return hist;
}

double MeanSessionLength(const std::vector<AggregatedSession>& sessions) {
  double total_len = 0.0;
  double total_weight = 0.0;
  for (const AggregatedSession& s : sessions) {
    total_len += static_cast<double>(s.queries.size()) *
                 static_cast<double>(s.frequency);
    total_weight += static_cast<double>(s.frequency);
  }
  return total_weight == 0.0 ? 0.0 : total_len / total_weight;
}

double FrequencyPowerLawAlpha(const std::vector<AggregatedSession>& sessions,
                              uint64_t x_min) {
  std::vector<std::pair<double, double>> samples;
  for (const auto& [freq, count] : SessionFrequencyHistogram(sessions)) {
    samples.emplace_back(static_cast<double>(freq),
                         static_cast<double>(count));
  }
  return EstimatePowerLawAlpha(samples, static_cast<double>(x_min));
}

}  // namespace sqp
