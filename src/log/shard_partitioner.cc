#include "log/shard_partitioner.h"

#include <algorithm>

#include "util/hash.h"
#include "util/status.h"

namespace sqp {

uint32_t ShardOfQuery(QueryId query, uint32_t num_shards) {
  SQP_CHECK(num_shards > 0);
  if (num_shards == 1) return 0;
  // Hash explicit little-endian bytes, not the in-memory representation,
  // so the id -> shard map is identical on any host — it is persisted
  // (via the manifest's partition-function id) and must never drift.
  const uint8_t bytes[4] = {static_cast<uint8_t>(query),
                            static_cast<uint8_t>(query >> 8),
                            static_cast<uint8_t>(query >> 16),
                            static_cast<uint8_t>(query >> 24)};
  return static_cast<uint32_t>(Fnv1a64(bytes, sizeof(bytes)) % num_shards);
}

uint32_t ShardOfContext(std::span<const QueryId> context,
                        uint32_t num_shards) {
  if (context.empty()) return 0;
  return ShardOfQuery(context.back(), num_shards);
}

void OwningShards(const AggregatedSession& session, uint32_t num_shards,
                  std::vector<uint32_t>* shards) {
  shards->clear();
  if (session.queries.size() < 2) return;  // no prediction evidence
  // Counting only ever ends a context at a non-final position, so the
  // final query's owner has no stake in this session (unless it also owns
  // an earlier query).
  for (size_t i = 0; i + 1 < session.queries.size(); ++i) {
    shards->push_back(ShardOfQuery(session.queries[i], num_shards));
  }
  std::sort(shards->begin(), shards->end());
  shards->erase(std::unique(shards->begin(), shards->end()), shards->end());
}

std::vector<std::vector<AggregatedSession>> PartitionSessionsByShard(
    const std::vector<AggregatedSession>& sessions, uint32_t num_shards) {
  SQP_CHECK(num_shards > 0);
  std::vector<std::vector<AggregatedSession>> corpora(num_shards);
  std::vector<uint32_t> owners;
  for (const AggregatedSession& session : sessions) {
    OwningShards(session, num_shards, &owners);
    for (const uint32_t shard : owners) {
      corpora[shard].push_back(session);
    }
  }
  return corpora;
}

}  // namespace sqp
