#ifndef SQP_LOG_SESSION_STATS_H_
#define SQP_LOG_SESSION_STATS_H_

#include <map>
#include <vector>

#include "log/types.h"

namespace sqp {

/// Histogram of session counts by session length (paper Fig. 5 / Fig. 7).
/// Keyed by length; values are weighted by aggregated frequency.
std::map<size_t, uint64_t> SessionLengthHistogram(
    const std::vector<AggregatedSession>& sessions);

/// Histogram over aggregated-session frequency: how many unique aggregated
/// sessions have frequency f (paper Fig. 6, the power-law plot). Keyed by
/// frequency; value = number of unique sessions with that frequency.
std::map<uint64_t, uint64_t> SessionFrequencyHistogram(
    const std::vector<AggregatedSession>& sessions);

/// Mean session length weighted by frequency; 0 for empty input.
double MeanSessionLength(const std::vector<AggregatedSession>& sessions);

/// MLE power-law exponent of the aggregated-session frequency distribution
/// for frequencies >= x_min (see util/math_util.h). Fig. 6 shape check.
double FrequencyPowerLawAlpha(const std::vector<AggregatedSession>& sessions,
                              uint64_t x_min = 2);

}  // namespace sqp

#endif  // SQP_LOG_SESSION_STATS_H_
