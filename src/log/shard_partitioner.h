#ifndef SQP_LOG_SHARD_PARTITIONER_H_
#define SQP_LOG_SHARD_PARTITIONER_H_

#include <span>
#include <vector>

#include "log/types.h"

namespace sqp {

/// Identifier of the query-id partition function, recorded in every
/// SnapshotManifest (core/snapshot_io.h) so a fleet can refuse to serve a
/// manifest written under a different routing scheme. There is exactly one
/// function today; new schemes get new ids, never a changed meaning for an
/// existing id.
inline constexpr uint32_t kShardPartitionLastQueryFnv1a = 1;

/// Shard owning `query`: FNV-1a over the id's little-endian bytes, mod the
/// shard count. Stable across platforms, runs and releases — the routing
/// side of the manifest contract.
uint32_t ShardOfQuery(QueryId query, uint32_t num_shards);

/// Shard owning an online context: the shard of its most recent query.
/// The suffix-keyed PST walk for a context only ever touches nodes whose
/// newest query is context.back() (plus the root, which serving never
/// scores), so the owning shard's model answers exactly like the unsharded
/// model. Empty contexts are uncovered everywhere; they route to shard 0.
uint32_t ShardOfContext(std::span<const QueryId> context,
                        uint32_t num_shards);

/// Per-shard training corpora: shard s receives every session containing at
/// least one s-owned query at a non-final position. Every substring
/// occurrence of a context (its continuation counts *and* its session-start
/// count) ends at a non-final position of some session, so the shard's
/// corpus reproduces the exact global counts for every context it owns —
/// the foundation of the bit-identical sharded serving guarantee. Sessions
/// shorter than two queries carry no prediction evidence and land nowhere.
/// A session can land in up to min(num_shards, distinct queries) corpora.
std::vector<std::vector<AggregatedSession>> PartitionSessionsByShard(
    const std::vector<AggregatedSession>& sessions, uint32_t num_shards);

/// The shards whose corpora `session` belongs to (ascending, deduplicated):
/// the owners of its non-final queries. The routing primitive for streaming
/// appends — a freshly observed session must reach exactly these shards'
/// retrainers to keep their counts exact.
void OwningShards(const AggregatedSession& session, uint32_t num_shards,
                  std::vector<uint32_t>* shards);

}  // namespace sqp

#endif  // SQP_LOG_SHARD_PARTITIONER_H_
