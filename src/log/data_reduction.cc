#include "log/data_reduction.h"

namespace sqp {

std::vector<AggregatedSession> ReduceSessions(
    const std::vector<AggregatedSession>& sessions,
    const ReductionOptions& options, ReductionReport* report) {
  ReductionReport r;
  std::vector<AggregatedSession> kept;
  kept.reserve(sessions.size());
  for (const AggregatedSession& s : sessions) {
    ++r.sessions_in;
    r.weight_in += s.frequency;
    if (s.frequency <= options.min_frequency_exclusive) continue;
    if (options.max_session_length > 0 &&
        s.queries.size() > options.max_session_length) {
      continue;
    }
    ++r.sessions_kept;
    r.weight_kept += s.frequency;
    kept.push_back(s);
  }
  if (report != nullptr) *report = r;
  return kept;
}

}  // namespace sqp
