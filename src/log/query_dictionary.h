#ifndef SQP_LOG_QUERY_DICTIONARY_H_
#define SQP_LOG_QUERY_DICTIONARY_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "log/types.h"

namespace sqp {

/// Bidirectional mapping between query strings and dense QueryIds.
///
/// Queries are normalized (whitespace-trimmed, inner whitespace collapsed,
/// ASCII lower-cased) before interning, matching standard query-log
/// canonicalization. Not thread-safe; build once, then share read-only.
class QueryDictionary {
 public:
  QueryDictionary() = default;

  // Movable but not copyable: the dictionary backs long-lived id spaces and
  // accidental copies would silently fork them.
  QueryDictionary(const QueryDictionary&) = delete;
  QueryDictionary& operator=(const QueryDictionary&) = delete;
  QueryDictionary(QueryDictionary&&) = default;
  QueryDictionary& operator=(QueryDictionary&&) = default;

  /// Returns the id for `query`, interning it if new.
  QueryId Intern(std::string_view query);

  /// Returns the id for `query` if already interned.
  std::optional<QueryId> Lookup(std::string_view query) const;

  /// Returns the text of an interned id. Requires a valid id.
  const std::string& Text(QueryId id) const;

  size_t size() const { return texts_.size(); }

  /// Applies the canonicalization used by Intern/Lookup.
  static std::string Normalize(std::string_view query);

 private:
  std::unordered_map<std::string, QueryId> ids_;
  std::vector<std::string> texts_;
};

}  // namespace sqp

#endif  // SQP_LOG_QUERY_DICTIONARY_H_
