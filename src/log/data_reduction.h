#ifndef SQP_LOG_DATA_REDUCTION_H_
#define SQP_LOG_DATA_REDUCTION_H_

#include <vector>

#include "log/types.h"

namespace sqp {

/// Options for the paper's data-reduction step (Section V-A.4): discard rare
/// (likely one-off / erroneous) aggregated sessions and super-long sessions.
struct ReductionOptions {
  /// Aggregated sessions with frequency <= this are dropped. The paper drops
  /// frequency <= 5 on a 2-billion-session corpus; callers scale this to
  /// their corpus size.
  uint64_t min_frequency_exclusive = 5;

  /// Aggregated sessions longer than this many queries are dropped
  /// (0 = no length cut). The paper notes super-long sessions are discarded.
  size_t max_session_length = 10;
};

/// Statistics about one reduction pass.
struct ReductionReport {
  uint64_t sessions_in = 0;        // unique aggregated sessions before
  uint64_t sessions_kept = 0;      // after
  uint64_t weight_in = 0;          // total frequency before
  uint64_t weight_kept = 0;        // total frequency after
  double kept_weight_fraction() const {
    return weight_in == 0 ? 0.0
                          : static_cast<double>(weight_kept) /
                                static_cast<double>(weight_in);
  }
};

/// Applies the reduction in place-and-return style: the kept sessions, in
/// the input order.
std::vector<AggregatedSession> ReduceSessions(
    const std::vector<AggregatedSession>& sessions,
    const ReductionOptions& options, ReductionReport* report);

}  // namespace sqp

#endif  // SQP_LOG_DATA_REDUCTION_H_
