#ifndef SQP_LOG_LOG_IO_H_
#define SQP_LOG_LOG_IO_H_

#include <fstream>
#include <string>
#include <vector>

#include "log/log_record.h"
#include "log/types.h"
#include "util/status.h"

namespace sqp {

/// Streams RawLogRecords to a TSV file, one record per line.
class LogWriter {
 public:
  LogWriter() = default;
  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Opens `path` for (over)writing.
  Status Open(const std::string& path);

  /// Appends one record. Requires a successful Open.
  Status Write(const RawLogRecord& record);

  /// Flushes and closes the file.
  Status Close();

  size_t records_written() const { return records_written_; }

 private:
  std::ofstream out_;
  size_t records_written_ = 0;
};

/// Streams RawLogRecords from a TSV file.
class LogReader {
 public:
  LogReader() = default;
  LogReader(const LogReader&) = delete;
  LogReader& operator=(const LogReader&) = delete;

  Status Open(const std::string& path);

  /// Reads the next record. Returns OK and sets *eof=false on success;
  /// OK and *eof=true at end of file; an error Status on malformed input.
  Status Read(RawLogRecord* record, bool* eof);

  size_t records_read() const { return records_read_; }
  size_t line_number() const { return line_number_; }

 private:
  std::ifstream in_;
  size_t records_read_ = 0;
  size_t line_number_ = 0;
};

/// Convenience: writes all `records` to `path`.
Status WriteLogFile(const std::string& path,
                    const std::vector<RawLogRecord>& records);

/// Convenience: reads an entire log file into memory.
Status ReadLogFile(const std::string& path, std::vector<RawLogRecord>* records);

}  // namespace sqp

#endif  // SQP_LOG_LOG_IO_H_
