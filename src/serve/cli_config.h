#ifndef SQP_SERVE_CLI_CONFIG_H_
#define SQP_SERVE_CLI_CONFIG_H_

/// Argument parsing and validation for examples/recommender_cli, factored
/// into the library so the rules are unit-testable
/// (tests/serve/cli_config_test.cc). The validation contract: a flag that
/// would be silently ignored is an InvalidArgument error naming the flag
/// and why — never a silent default.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "serve/deadline.h"
#include "util/status.h"

namespace sqp {

struct RecommenderCliConfig {
  size_t threads = 1;  // engine worker lanes, [1, 64]
  size_t batch = 1;    // contexts buffered per RecommendMany, [1, 65536]
  size_t shards = 1;   // engine shards, [1, 4096]
  bool tail = false;
  bool compact = false;
  std::string save_snapshot;
  std::string load_snapshot;

  /// Per-request latency budget in microseconds; 0 = unbounded (the
  /// deadline-free legacy behavior — never shed, never degraded).
  uint64_t deadline_us = 0;

  /// Admission priority lane for served requests.
  QosLane lane = QosLane::kInteractive;

  /// Network serving mode: expose the cold-booted artifact over TCP (one
  /// ShardServer per shard on ports serve_port..serve_port+N-1) instead
  /// of answering stdin. 0 = off.
  uint16_t serve_port = 0;

  /// Network client mode: "host:baseport" of a fleet started with
  /// --serve-port; the stdin loop is served through a RouterClient over
  /// TCP instead of an in-process engine. Empty = off.
  std::string connect_host;
  uint16_t connect_port = 0;

  /// Closed-loop serving: directory for the append-only feedback log
  /// (serve/feedback.h). Every served answer is logged as an impression;
  /// with --tail, session ends fold clicked impressions back into the
  /// retrainer (ConsumeFeedback). Empty = no feedback logging.
  std::string feedback_log;

  /// Exploration policy spec "POLICY:PARAM" (serve/explorer.h):
  /// "epsilon:0.1", "softmax:8", "bag:4", or "none". Requires
  /// --feedback-log (exploring without logging propensities would make
  /// the traffic unevaluatable). Empty = greedy serving, bit-identical
  /// to a build without the explorer.
  std::string explore;
};

/// Parses recommender_cli arguments (argv[1..], program name excluded).
/// Later occurrences of a flag override earlier ones; validation then
/// rejects combinations where a flag would be ignored:
///  - --load-snapshot with --tail or --save-snapshot (a cold-booted
///    replica has no training corpus to retrain or persist),
///  - --load-snapshot with --compact (a persisted blob already IS the
///    compact layout; the flag would change nothing),
///  - --load-snapshot with --shards (the shard count comes from the
///    manifest, not the command line),
///  - --serve-port and --connect each require --load-snapshot (both sides
///    of the network tier resolve the fleet shape and the dictionary off
///    the persisted artifact) and are mutually exclusive,
///  - --serve-port with --batch/--deadline-us/--lane (a shard server has
///    no stdin loop; QoS travels per-request from the connecting router),
///  - --connect with --threads (the router is a single-connection client;
///    engine lanes belong to the serving side),
///  - --explore without --feedback-log (exploration must log propensities
///    or the perturbed traffic cannot be evaluated),
///  - --connect with --feedback-log/--explore (feedback is a server-side
///    concern: the serving process owns the log; a router would log
///    answers it did not serve).
/// Every error message names the offending flag and the reason.
Result<RecommenderCliConfig> ParseRecommenderCliArgs(
    std::span<const std::string> args);

}  // namespace sqp

#endif  // SQP_SERVE_CLI_CONFIG_H_
