#include "serve/recommender_engine.h"

#include <algorithm>
#include <functional>
#include <thread>

#include "core/snapshot_io.h"

namespace sqp {
namespace {

using internal::ThreadScratch;

size_t ResolveThreads(size_t requested) {
  if (requested != 0) return std::clamp<size_t>(requested, 1, 64);
  const size_t hw = std::thread::hardware_concurrency();
  return std::clamp<size_t>(hw == 0 ? 1 : hw, 1, 16);
}

}  // namespace

RecommenderEngine::RecommenderEngine(EngineOptions options)
    : options_(options), pool_(ResolveThreads(options.num_threads)) {
  lane_scratch_.resize(pool_.num_lanes());
}

void RecommenderEngine::Publish(
    std::shared_ptr<const ServingSnapshot> snapshot) {
  snapshot_.store(std::move(snapshot));
  snapshots_published_.fetch_add(1, std::memory_order_relaxed);
}

Status RecommenderEngine::LoadAndPublish(const std::string& path) {
  Result<std::shared_ptr<const MappedCompactSnapshot>> mapped =
      SnapshotIo::Map(path);
  if (!mapped.ok()) return mapped.status();
  Publish(std::move(mapped.value()));
  return Status::OK();
}

std::shared_ptr<const ServingSnapshot> RecommenderEngine::CurrentSnapshot()
    const {
  return snapshot_.load();
}

uint64_t RecommenderEngine::current_version() const {
  const std::shared_ptr<const ServingSnapshot> snapshot = CurrentSnapshot();
  return snapshot == nullptr ? 0 : snapshot->version();
}

Recommendation RecommenderEngine::Recommend(ContextRef context, size_t top_n,
                                            uint64_t* served_version) const {
  const std::shared_ptr<const ServingSnapshot> snapshot = CurrentSnapshot();
  thread_local const size_t counter_slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kCounterShards;
  queries_served_[counter_slot].value.fetch_add(1,
                                                std::memory_order_relaxed);
  if (snapshot == nullptr) {
    if (served_version != nullptr) *served_version = 0;
    return Recommendation{};
  }
  if (served_version != nullptr) *served_version = snapshot->version();
  return snapshot->Recommend(context, top_n, &ThreadScratch());
}

std::vector<Recommendation> RecommenderEngine::RecommendMany(
    std::span<const ContextRef> contexts, size_t top_n,
    uint64_t* served_version) const {
  std::vector<Recommendation> results(contexts.size());
  // One snapshot grab for the whole batch: even if a retrain publishes
  // mid-batch, every result comes from the same model generation.
  const std::shared_ptr<const ServingSnapshot> snapshot = CurrentSnapshot();
  queries_served_[0].value.fetch_add(contexts.size(),
                                     std::memory_order_relaxed);
  batches_served_.fetch_add(1, std::memory_order_relaxed);
  if (served_version != nullptr) {
    *served_version = snapshot == nullptr ? 0 : snapshot->version();
  }
  if (snapshot == nullptr || contexts.empty()) return results;

  if (pool_.num_lanes() == 1 || contexts.size() < options_.min_batch_fanout) {
    SnapshotScratch& scratch = ThreadScratch();
    for (size_t i = 0; i < contexts.size(); ++i) {
      results[i] = snapshot->Recommend(contexts[i], top_n, &scratch);
    }
    return results;
  }

  const ServingSnapshot* model = snapshot.get();
  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  pool_.Run(contexts.size(), [&, model](size_t i, size_t lane) {
    results[i] = model->Recommend(contexts[i], top_n, &lane_scratch_[lane]);
  });
  return results;
}

std::vector<Recommendation> RecommenderEngine::RecommendMany(
    const std::vector<std::vector<QueryId>>& contexts, size_t top_n,
    uint64_t* served_version) const {
  std::vector<ContextRef> refs;
  refs.reserve(contexts.size());
  for (const std::vector<QueryId>& context : contexts) {
    refs.emplace_back(context.data(), context.size());
  }
  return RecommendMany(std::span<const ContextRef>(refs), top_n,
                       served_version);
}

EngineStats RecommenderEngine::stats() const {
  EngineStats stats;
  for (const CounterShard& shard : queries_served_) {
    stats.queries_served += shard.value.load(std::memory_order_relaxed);
  }
  stats.batches_served = batches_served_.load(std::memory_order_relaxed);
  stats.snapshots_published =
      snapshots_published_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace sqp
