#include "serve/recommender_engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

#include "core/snapshot_io.h"
#include "serve/feedback.h"
#include "util/timer.h"

namespace sqp {
namespace {

using internal::ThreadScratch;

size_t ResolveThreads(size_t requested) {
  if (requested != 0) return std::clamp<size_t>(requested, 1, 64);
  const size_t hw = std::thread::hardware_concurrency();
  return std::clamp<size_t>(hw == 0 ? 1 : hw, 1, 16);
}

/// First-touch scratch pre-sizing: the first request a scratch serves
/// against a given snapshot reserves every buffer to the snapshot's hint,
/// so steady-state serving allocates nothing. Done lazily per
/// (scratch, snapshot) pair — publish-time sizing would mutate lane
/// scratch buffers that in-flight batches are still using.
SnapshotScratch& PreparedFor(const ServingSnapshot* model,
                             SnapshotScratch& scratch) {
  if (scratch.prepared_for != model) {
    scratch.Prepare(model->ScratchHint());
    scratch.prepared_for = model;
  }
  return scratch;
}

}  // namespace

RecommenderEngine::RecommenderEngine(EngineOptions options)
    : options_(options),
      pool_(ResolveThreads(options.num_threads)),
      admission_(options.admission) {
  lane_scratch_.resize(pool_.num_lanes());
}

void RecommenderEngine::Publish(
    std::shared_ptr<const ServingSnapshot> snapshot) {
  snapshot_.store(std::move(snapshot));
  snapshots_published_.fetch_add(1, std::memory_order_relaxed);
}

Status RecommenderEngine::LoadAndPublish(const std::string& path) {
  Result<std::shared_ptr<const MappedCompactSnapshot>> mapped =
      SnapshotIo::Map(path);
  if (!mapped.ok()) return mapped.status();
  Publish(std::move(mapped.value()));
  return Status::OK();
}

std::shared_ptr<const ServingSnapshot> RecommenderEngine::CurrentSnapshot()
    const {
  return snapshot_.load();
}

uint64_t RecommenderEngine::current_version() const {
  const std::shared_ptr<const ServingSnapshot> snapshot = CurrentSnapshot();
  return snapshot == nullptr ? 0 : snapshot->version();
}

BatchResult RecommenderEngine::RecommendMany(
    std::span<const ContextRef> contexts, size_t top_n,
    const ServeOptions& options) const {
  const Deadline::Clock::time_point start = Deadline::Clock::now();
  const size_t n = contexts.size();
  BatchResult out;
  out.results.resize(n);
  out.statuses.assign(n, StatusCode::kOk);
  out.effective_top_n = top_n;

  queries_served_[0].value.fetch_add(n, std::memory_order_relaxed);
  batches_served_.fetch_add(1, std::memory_order_relaxed);

  if (options.deadline.Expired(start)) {
    admission_.CountShed(options.lane, StatusCode::kDeadlineExceeded);
    out.admission = Status::DeadlineExceeded("deadline expired on arrival");
    std::fill(out.statuses.begin(), out.statuses.end(),
              StatusCode::kDeadlineExceeded);
    return out;
  }

  // One snapshot grab for the whole batch: even if a retrain publishes
  // mid-batch, every result comes from the same model generation.
  const std::shared_ptr<const ServingSnapshot> snapshot = CurrentSnapshot();
  out.served_version = snapshot == nullptr ? 0 : snapshot->version();
  if (snapshot == nullptr) {
    // No published model: uncovered-empty answers (legacy contract), with
    // the per-item status making the cause explicit.
    std::fill(out.statuses.begin(), out.statuses.end(),
              StatusCode::kUnavailable);
    return out;
  }
  if (n == 0) {
    out.effective_top_n = top_n;
    return out;
  }

  const size_t effective_top_n =
      admission_.DegradedTopN(top_n, options.deadline);
  out.effective_top_n = effective_top_n;
  out.degraded = effective_top_n < top_n;
  const ServingSnapshot* model = snapshot.get();
  size_t expired_items = 0;

  if (pool_.num_lanes() == 1 || n < options_.min_batch_fanout) {
    // Inline path: no slot contention, but the deadline still cuts the
    // batch short so a caller never blocks past it on a huge inline run.
    SnapshotScratch& scratch = PreparedFor(model, ThreadScratch());
    for (size_t i = 0; i < n; ++i) {
      if (options.deadline.bounded() && (i & 31u) == 0 && i != 0 &&
          options.deadline.Expired()) {
        for (size_t j = i; j < n; ++j) {
          out.statuses[j] = StatusCode::kDeadlineExceeded;
        }
        expired_items = n - i;
        break;
      }
      out.results[i] = model->Recommend(contexts[i], effective_top_n,
                                        &scratch);
      if (options.feedback != nullptr) {
        options.feedback->OnServed(contexts[i], out.served_version,
                                   &out.results[i]);
      }
    }
  } else {
    const Status admitted =
        admission_.Admit(options.lane, options.deadline, n);
    if (!admitted.ok()) {
      std::fill(out.statuses.begin(), out.statuses.end(), admitted.code());
      out.admission = admitted;
      return out;
    }
    std::atomic<bool> expired{false};
    const bool bounded = options.deadline.bounded();
    WallTimer service;
    pool_.Run(n, [&, model](size_t i, size_t lane) {
      if (bounded) {
        // Mid-batch deadline checks: one stride-32 clock read flips the
        // flag; every task after it returns its item unserved with an
        // explicit per-item status instead of blocking past the deadline.
        if (expired.load(std::memory_order_relaxed)) {
          out.statuses[i] = StatusCode::kDeadlineExceeded;
          return;
        }
        if ((i & 31u) == 0 && options.deadline.Expired()) {
          expired.store(true, std::memory_order_relaxed);
          out.statuses[i] = StatusCode::kDeadlineExceeded;
          return;
        }
      }
      out.results[i] = model->Recommend(
          contexts[i], effective_top_n,
          &PreparedFor(model, lane_scratch_[lane]));
      if (options.feedback != nullptr) {
        options.feedback->OnServed(contexts[i], out.served_version,
                                   &out.results[i]);
      }
    });
    if (expired.load(std::memory_order_relaxed)) {
      for (const StatusCode code : out.statuses) {
        if (code == StatusCode::kDeadlineExceeded) ++expired_items;
      }
    }
    admission_.Release(n - expired_items, service.ElapsedSeconds() * 1e6);
  }

  out.served = n - expired_items;
  const double latency_us =
      std::chrono::duration<double, std::micro>(Deadline::Clock::now() -
                                                start)
          .count();
  admission_.RecordServed(options.lane, latency_us, out.degraded,
                          expired_items);
  return out;
}

ServeResult RecommenderEngine::Recommend(ContextRef context, size_t top_n,
                                         const ServeOptions& options) const {
  ServeResult out;
  thread_local const size_t counter_slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kCounterShards;
  queries_served_[counter_slot].value.fetch_add(1,
                                                std::memory_order_relaxed);
  if (!options.deadline.bounded()) {
    // Unbounded fast path — the legacy single-query hot path: no clock
    // reads, no degrade check, no QoS accounting (an unbounded request is
    // by contract never shed or degraded, so there is nothing to record
    // that the serving counters above don't already).
    const std::shared_ptr<const ServingSnapshot> snapshot =
        CurrentSnapshot();
    if (snapshot == nullptr) {
      out.status = StatusCode::kUnavailable;
      return out;
    }
    out.served_version = snapshot->version();
    out.recommendation = snapshot->Recommend(
        context, top_n, &PreparedFor(snapshot.get(), ThreadScratch()));
    if (options.feedback != nullptr) {
      out.feedback_record_id = options.feedback->OnServed(
          context, out.served_version, &out.recommendation);
    }
    return out;
  }
  const Deadline::Clock::time_point start = Deadline::Clock::now();
  if (options.deadline.Expired(start)) {
    admission_.CountShed(options.lane, StatusCode::kDeadlineExceeded);
    out.status = StatusCode::kDeadlineExceeded;
    return out;
  }
  const std::shared_ptr<const ServingSnapshot> snapshot = CurrentSnapshot();
  if (snapshot == nullptr) {
    out.status = StatusCode::kUnavailable;
    return out;
  }
  out.served_version = snapshot->version();
  const size_t effective_top_n =
      admission_.DegradedTopN(top_n, options.deadline);
  out.degraded = effective_top_n < top_n;
  out.recommendation = snapshot->Recommend(
      context, effective_top_n,
      &PreparedFor(snapshot.get(), ThreadScratch()));
  if (options.feedback != nullptr) {
    out.feedback_record_id = options.feedback->OnServed(
        context, out.served_version, &out.recommendation);
  }
  const double latency_us =
      std::chrono::duration<double, std::micro>(Deadline::Clock::now() -
                                                start)
          .count();
  admission_.RecordServed(options.lane, latency_us, out.degraded, 0);
  return out;
}

EngineStats RecommenderEngine::stats() const {
  EngineStats stats;
  for (const CounterShard& shard : queries_served_) {
    stats.queries_served += shard.value.load(std::memory_order_relaxed);
  }
  stats.batches_served = batches_served_.load(std::memory_order_relaxed);
  stats.snapshots_published =
      snapshots_published_.load(std::memory_order_relaxed);
  stats.admission = admission_.stats();
  return stats;
}

}  // namespace sqp
