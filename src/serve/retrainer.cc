#include "serve/retrainer.h"

#include <algorithm>
#include <utility>

#include "core/snapshot_io.h"
#include "serve/feedback.h"

namespace sqp {

Retrainer::Retrainer(RecommenderEngine* engine, RetrainerOptions options)
    : engine_(engine), options_(std::move(options)) {
  SQP_CHECK(engine_ != nullptr);
  if (options_.model.components.empty()) {
    options_.model.components =
        MvmmOptions::DefaultComponents(options_.model.default_max_depth);
  }
}

Retrainer::~Retrainer() { Stop(); }

Status Retrainer::PublishAndPersist(
    std::shared_ptr<const ModelSnapshot> full, uint64_t version) {
  // The compact re-pack is needed when it is the published variant or
  // when a blob must be persisted (the on-disk format IS the compact
  // layout); one pack serves both purposes.
  std::shared_ptr<const CompactSnapshot> compact;
  if (options_.publish_compact || !options_.persist_path.empty()) {
    compact = CompactSnapshot::FromSnapshot(*full, options_.compact);
  }
  if (options_.publish_compact) {
    engine_->Publish(compact);
  } else {
    engine_->Publish(std::move(full));
  }
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  // The published version must be visible the moment the engine swap is
  // live — before the persist loop and before after_persist — so hook
  // observers (ShardedRetrainerSet's manifest re-pin) read the version
  // this publish carries, not the previous cycle's.
  {
    std::lock_guard<std::mutex> lock(mu_);
    version_ = version;
  }
  version_cv_.notify_all();
  if (!options_.persist_path.empty()) {
    // Bounded retry with exponential backoff: a transient persist failure
    // (full disk, slow rename) must not silently drop this rebuild's
    // blob. The publish above is already live either way.
    Status persist;
    std::chrono::milliseconds backoff = options_.persist_retry_backoff;
    for (size_t attempt = 0;; ++attempt) {
      persist = SnapshotIo::Save(*compact, options_.persist_path);
      if (persist.ok()) break;
      if (attempt >= options_.persist_max_retries) {
        persist_failures_.fetch_add(1, std::memory_order_relaxed);
        return persist;
      }
      persist_retries_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
    if (options_.after_persist) options_.after_persist();
  }
  return Status::OK();
}

RetrainerStats Retrainer::stats() const {
  RetrainerStats stats;
  stats.rebuilds = rebuilds_.load(std::memory_order_relaxed);
  stats.retrain_failures =
      retrain_failures_.load(std::memory_order_relaxed);
  stats.persist_retries = persist_retries_.load(std::memory_order_relaxed);
  stats.persist_failures =
      persist_failures_.load(std::memory_order_relaxed);
  return stats;
}

size_t Retrainer::EffectiveVocabulary() const {
  if (options_.vocabulary_size != 0) return options_.vocabulary_size;
  return static_cast<size_t>(observed_max_id_) + 1;
}

Status Retrainer::Bootstrap(std::vector<AggregatedSession> corpus) {
  return Bootstrap(std::move(corpus), nullptr);
}

Status Retrainer::Bootstrap(std::vector<AggregatedSession> corpus,
                            std::shared_ptr<const ModelSnapshot> prebuilt) {
  std::lock_guard<std::mutex> retrain_lock(retrain_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (bootstrapped_) {
      return Status::FailedPrecondition("Retrainer already bootstrapped");
    }
  }
  if (corpus.empty()) {
    return Status::InvalidArgument("Bootstrap needs a non-empty corpus");
  }
  corpus_ = std::move(corpus);
  for (const AggregatedSession& session : corpus_) {
    for (QueryId q : session.queries) {
      observed_max_id_ = std::max(observed_max_id_, q);
    }
  }
  index_.Build(corpus_, ContextIndex::Mode::kSubstring,
               internal::SharedIndexDepth(options_.model),
               options_.count_workers);

  std::shared_ptr<const ModelSnapshot> snapshot = std::move(prebuilt);
  if (snapshot == nullptr) {
    TrainingData data;
    data.sessions = &corpus_;
    data.vocabulary_size = EffectiveVocabulary();
    data.substring_index = &index_;
    Result<std::shared_ptr<const ModelSnapshot>> built =
        ModelSnapshot::Build(data, options_.model, /*version=*/1);
    if (!built.ok()) {
      retrain_failures_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      last_status_ = built.status();
      return built.status();
    }
    snapshot = std::move(built.value());
  }
  // Serving goes live even if persistence fails; the persist status is
  // surfaced to the caller and in last_status().
  const Status persist = PublishAndPersist(std::move(snapshot), /*version=*/1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    bootstrapped_ = true;
    last_status_ = persist;
  }
  return persist;
}

void Retrainer::AppendSessions(std::vector<AggregatedSession> sessions) {
  if (sessions.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  pending_.insert(pending_.end(),
                  std::make_move_iterator(sessions.begin()),
                  std::make_move_iterator(sessions.end()));
}

Result<size_t> Retrainer::ConsumeFeedback(const std::string& dir) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  Result<std::vector<FeedbackRecord>> records = ReadFeedbackLog(dir);
  if (!records.ok()) return records.status();
  std::vector<FeedbackRecord> fresh;
  uint64_t max_id = feedback_watermark_;
  for (FeedbackRecord& record : *records) {
    if (record.record_id <= feedback_watermark_) continue;
    max_id = std::max(max_id, record.record_id);
    fresh.push_back(std::move(record));
  }
  std::vector<AggregatedSession> sessions = SessionsFromFeedback(fresh);
  const size_t appended = sessions.size();
  if (!sessions.empty()) AppendSessions(std::move(sessions));
  feedback_watermark_ = max_id;
  return appended;
}

Status Retrainer::RetrainOnce() {
  std::lock_guard<std::mutex> retrain_lock(retrain_mu_);
  std::vector<AggregatedSession> fresh;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!bootstrapped_) {
      return Status::FailedPrecondition("RetrainOnce before Bootstrap");
    }
    fresh.swap(pending_);
  }
  if (fresh.empty()) return Status::OK();
  const Status status = RebuildAndPublish(std::move(fresh));
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_status_ = status;
  }
  return status;
}

Status Retrainer::RebuildAndPublish(std::vector<AggregatedSession> fresh) {
  // retrain_mu_ is held: corpus_, index_ and observed_max_id_ are ours.
  // Serving continues on the previous snapshot for this whole function;
  // the engine only learns about the new model in the final Publish.
  index_.Append(fresh, options_.count_workers);
  for (const AggregatedSession& session : fresh) {
    for (QueryId q : session.queries) {
      observed_max_id_ = std::max(observed_max_id_, q);
    }
  }
  corpus_.insert(corpus_.end(), std::make_move_iterator(fresh.begin()),
                 std::make_move_iterator(fresh.end()));

  uint64_t next_version;
  {
    std::lock_guard<std::mutex> lock(mu_);
    next_version = version_ + 1;
  }
  TrainingData data;
  data.sessions = &corpus_;
  data.vocabulary_size = EffectiveVocabulary();
  data.substring_index = &index_;
  Result<std::shared_ptr<const ModelSnapshot>> built =
      ModelSnapshot::Build(data, options_.model, next_version);
  if (!built.ok()) {
    retrain_failures_.fetch_add(1, std::memory_order_relaxed);
    return built.status();
  }

  return PublishAndPersist(std::move(built.value()), next_version);
}

void Retrainer::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SQP_CHECK(bootstrapped_);  // Start requires a published baseline
  }
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (!stop_.load()) return;  // already running
  stop_.store(false);
  worker_ = std::thread(&Retrainer::BackgroundLoop, this);
}

void Retrainer::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (stop_.load()) return;  // not running
  stop_.store(true);
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
  }
  stop_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

bool Retrainer::running() const { return !stop_.load(); }

void Retrainer::BackgroundLoop() {
  while (!stop_.load()) {
    size_t pending = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending = pending_.size();
    }
    if (pending >= std::max<size_t>(1, options_.min_pending_sessions)) {
      RetrainOnce();  // outcome lands in last_status()
    }
    std::unique_lock<std::mutex> lock(stop_mu_);
    stop_cv_.wait_for(lock, options_.poll_interval,
                      [this] { return stop_.load(); });
  }
}

uint64_t Retrainer::published_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

void Retrainer::WaitForVersionAtLeast(uint64_t version) const {
  std::unique_lock<std::mutex> lock(mu_);
  version_cv_.wait(lock, [&] { return version_ >= version; });
}

Status Retrainer::last_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_status_;
}

size_t Retrainer::pending_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

size_t Retrainer::corpus_size() const {
  std::lock_guard<std::mutex> lock(retrain_mu_);
  return corpus_.size();
}

}  // namespace sqp
