#ifndef SQP_SERVE_WORKER_POOL_H_
#define SQP_SERVE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sqp {

/// A fixed pool executing "parallel for" jobs for the serving layer:
/// Run(num_tasks, fn) partitions [0, num_tasks) across the pool's workers
/// *and the calling thread* through a shared atomic cursor, and returns once
/// every index has executed.
///
/// `num_lanes` is the total parallelism including the caller, so a pool of
/// one lane spawns no threads and Run degenerates to an inline loop — the
/// single-threaded configuration pays no synchronization at all.
///
/// One job runs at a time; concurrent Run calls must be serialized by the
/// caller (RecommenderEngine holds a batch mutex around it). The task
/// callback receives (task_index, lane) with lane < num_lanes and lane 0 the
/// caller, so per-lane scratch needs no further locking.
class WorkerPool {
 public:
  explicit WorkerPool(size_t num_lanes);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t num_lanes() const { return threads_.size() + 1; }

  /// Executes fn(i, lane) for every i in [0, num_tasks), blocking until all
  /// tasks complete. fn must be safe to call concurrently from different
  /// lanes (distinct lanes never share a task index).
  void Run(size_t num_tasks, const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerMain(size_t lane);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  /// Job handoff state, guarded by mu_. generation_ increments per job so
  /// workers can tell a fresh job from a spurious wake; lanes_active_ counts
  /// worker lanes still inside the current job.
  uint64_t generation_ = 0;
  size_t lanes_active_ = 0;
  const std::function<void(size_t, size_t)>* job_ = nullptr;
  size_t job_tasks_ = 0;
  std::atomic<size_t> next_task_{0};
};

}  // namespace sqp

#endif  // SQP_SERVE_WORKER_POOL_H_
