#ifndef SQP_SERVE_SHARDED_ENGINE_H_
#define SQP_SERVE_SHARDED_ENGINE_H_

/// Sharded serving: the query-id space is partitioned across N independent
/// RecommenderEngine shards (log/shard_partitioner.h routes by the
/// context's most recent query), each serving its own snapshot through the
/// usual atomic-swap seam. The load-bearing property is *bit-identical
/// output*: the suffix-keyed PST walk for a context only ever visits nodes
/// whose newest query is context.back(), every such node's counts, KL
/// growth decision and view mask depend only on data from sessions where
/// that query occurs at a non-final position — exactly the sessions the
/// partitioner gives the owning shard — and the serving mixture never
/// scores the root. A shard therefore answers its contexts exactly as the
/// unsharded model would (tested for shard counts {1, 2, 4, 7}).
///
/// The per-component Gaussian widths are the one global quantity: the
/// sharded trainer fits them ONCE over the full corpus by routing each
/// pseudo-test walk of the Eq. 8-10 sample to the owning shard's tree,
/// then stamps the same sigma vector onto every shard
/// (ModelSnapshot::WithSigmas / MvmmOptions::fixed_sigmas). Rebuilding one
/// shard keeps the fleet weight-consistent because rebuilds reuse the
/// fixed vector.
///
/// Persistence: per-shard compact blobs (core/snapshot_io) indexed by a
/// SnapshotManifest; a fleet cold-boots with one
/// ShardedEngine::LoadAndPublish(manifest) call.

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/compact_snapshot.h"
#include "core/model_snapshot.h"
#include "core/snapshot_io.h"
#include "log/shard_partitioner.h"
#include "serve/recommender_engine.h"
#include "serve/retrainer.h"
#include "serve/worker_pool.h"
#include "util/status.h"

namespace sqp {

struct ShardedEngineOptions {
  /// Number of engine shards (>= 1; clamped to [1, 4096]).
  size_t num_shards = 1;

  /// Worker lanes for cross-shard batched serving, including the calling
  /// thread (0 = hardware concurrency clamped to [1, 16]; explicit values
  /// clamped to [1, 64]). Shard engines themselves run single-lane — the
  /// sharded front-end owns all batch parallelism, so lanes are not
  /// multiplied by shards.
  size_t num_threads = 0;

  /// Batches smaller than this run inline on the calling thread.
  size_t min_batch_fanout = 32;

  /// Admission-control knobs for the fleet's batch execution slot (see
  /// serve/admission_queue.h). Shard engines keep their own (single-lane,
  /// effectively idle) queues; all cross-shard batch admission happens
  /// here.
  AdmissionOptions admission;
};

/// Aggregate serving counters plus the per-shard snapshot versions. With
/// independent shard rebuilds the versions may diverge; max_version -
/// min_version is the fleet's staleness skew (bounded by however many
/// rebuilds the slowest shard is behind — tested in
/// tests/serve/sharded_engine_test.cc).
struct ShardedStats {
  uint64_t queries_served = 0;  // single + batched, across all shards
  uint64_t batches_served = 0;  // sharded RecommendMany calls
  uint64_t min_version = 0;
  uint64_t max_version = 0;
  std::vector<uint64_t> shard_versions;

  /// Fleet-wide QoS counters: the front-end admission queue's lanes
  /// summed with every shard engine's (which count deadline-aware
  /// single-query traffic routed to them). The EWMA is the front-end
  /// queue's.
  AdmissionStats admission;
};

/// Per-shard outcome of a degraded fleet boot (LoadAndPublishAvailable).
struct FleetBootReport {
  /// Shards that verified, mapped and published.
  size_t healthy_shards = 0;

  /// Index == shard id; OK for published shards, the verify/map error for
  /// dead ones (which keep whatever snapshot they had — typically none).
  std::vector<Status> shard_status;
};

/// The sharded serving front-end: routes every request to the shard owning
/// its context and reassembles batch results positionally. Because each
/// context is answered entirely by its owning shard — which serves the
/// unsharded model's exact scores for that context, with the same
/// (score desc, query asc) tie-breaking — the merged global top-N equals
/// the single-engine output bit for bit.
///
/// Thread-safety: mirrors RecommenderEngine — all const methods are safe
/// from any number of threads concurrently with PublishShard /
/// LoadAndPublish from any other thread. A batch grabs each shard's
/// snapshot once, so even a swap landing mid-batch cannot mix generations
/// within one shard's answers.
class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedEngineOptions options = {});

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  size_t num_shards() const { return shards_.size(); }
  size_t num_threads() const { return pool_.num_lanes(); }

  /// The shard owning `context` (shard 0 for empty contexts, which are
  /// uncovered everywhere).
  uint32_t OwningShard(ContextRef context) const {
    return ShardOfContext(context,
                          static_cast<uint32_t>(shards_.size()));
  }

  /// Direct access to one shard's engine — the seam a per-shard Retrainer
  /// publishes through, and the hook for per-shard cold boots.
  RecommenderEngine* shard(size_t s) { return shards_[s].get(); }
  const RecommenderEngine& shard(size_t s) const { return *shards_[s]; }

  /// Publishes a snapshot to one shard; readers of other shards are
  /// untouched (the independent-rebuild seam).
  void PublishShard(size_t s,
                    std::shared_ptr<const ServingSnapshot> snapshot) {
    shards_[s]->Publish(std::move(snapshot));
  }

  /// Fleet cold boot from a SnapshotManifest: verifies the manifest's
  /// shard count and partition function against this engine, checks every
  /// blob against its manifest pin, maps all shards zero-copy, and only
  /// then publishes — on any failure nothing is published and the current
  /// snapshots stay live.
  Status LoadAndPublish(const std::string& manifest_path,
                        const SnapshotLoadOptions& options = {});

  /// Degraded fleet boot: like LoadAndPublish, but a shard whose blob
  /// fails verification or mapping does not sink the fleet — every
  /// healthy shard is published and keeps serving its routed traffic,
  /// while the dead shard stays unpublished (its contexts answer
  /// uncovered-empty, kUnavailable through the deadline-aware API). The
  /// manifest itself must still be valid and match this engine; the
  /// per-shard outcomes land in the report. At least one healthy shard is
  /// required (an all-dead boot returns the first shard's error).
  Result<FleetBootReport> LoadAndPublishAvailable(
      const std::string& manifest_path,
      const SnapshotLoadOptions& options = {});

  /// Sizes a fresh engine from the manifest (shard count comes from the
  /// file) and cold-boots it. `base.num_shards` is ignored.
  static Result<std::unique_ptr<ShardedEngine>> BootFromManifest(
      const std::string& manifest_path, ShardedEngineOptions base = {},
      const SnapshotLoadOptions& load_options = {});

  /// THE single-query path (canonical signature — the legacy spelling
  /// below wraps it): one routing decision, then the owning shard
  /// engine's canonical path (its counters, deadline handling and scratch
  /// included; kUnavailable if that shard has no published snapshot).
  /// Unbounded deadlines ride the shard engine's clock-free fast path.
  ServeResult Recommend(ContextRef context, size_t top_n,
                        const ServeOptions& options) const;

  /// THE cross-shard batched path (canonical signature): grabs every
  /// shard's snapshot once, fans the contexts out across the pool (each
  /// answered by its owning shard's snapshot), with the same admission /
  /// mid-batch-expiry / degrade semantics as the single-engine overload
  /// (per-item outcomes in BatchResult::statuses; items owned by an
  /// unpublished shard are kUnavailable). BatchResult::served_version is
  /// 0 — per-shard versions live in stats().
  BatchResult RecommendMany(std::span<const ContextRef> contexts,
                            size_t top_n, const ServeOptions& options) const;

  // ------------------------------------------------- legacy signatures
  // Thin wrappers over the canonical ServeOptions paths: unbounded
  // deadline, never shed, never degraded, bit-identical results.

  /// Legacy single-query spelling.
  Recommendation Recommend(ContextRef context, size_t top_n,
                           uint64_t* served_version = nullptr) const {
    ServeResult served = Recommend(context, top_n, ServeOptions{});
    if (served_version != nullptr) *served_version = served.served_version;
    return std::move(served.recommendation);
  }

  /// Legacy batch spelling. Contexts owned by a shard with no published
  /// snapshot yield uncovered empty results, exactly like an unpublished
  /// engine. Pool-sized batches ride the bulk lane.
  std::vector<Recommendation> RecommendMany(
      std::span<const ContextRef> contexts, size_t top_n) const {
    ServeOptions options;
    options.lane = contexts.size() >= options_.min_batch_fanout
                       ? QosLane::kBulk
                       : QosLane::kInteractive;
    return std::move(RecommendMany(contexts, top_n, options).results);
  }

  /// Legacy batch spelling over owned query sequences.
  std::vector<Recommendation> RecommendMany(
      const std::vector<std::vector<QueryId>>& contexts,
      size_t top_n) const {
    std::vector<ContextRef> refs;
    refs.reserve(contexts.size());
    for (const std::vector<QueryId>& context : contexts) {
      refs.emplace_back(context.data(), context.size());
    }
    return RecommendMany(std::span<const ContextRef>(refs), top_n);
  }

  /// Per-shard snapshot versions (0 for never-published shards), index ==
  /// shard id.
  std::vector<uint64_t> shard_versions() const;

  ShardedStats stats() const;

 private:
  ShardedEngineOptions options_;
  std::vector<std::unique_ptr<RecommenderEngine>> shards_;
  mutable WorkerPool pool_;
  /// The fleet's batch execution slot (see RecommenderEngine::admission_).
  mutable AdmissionQueue admission_;
  mutable std::vector<SnapshotScratch> lane_scratch_;
  mutable std::atomic<uint64_t> batch_queries_{0};
  mutable std::atomic<uint64_t> batches_served_{0};
};

// --------------------------------------------------------------- training

struct ShardedTrainOptions {
  /// Model configuration applied to every shard (empty component list =
  /// the paper's default set). If `model.fixed_sigmas` is set the global
  /// fit is skipped and every shard serves with the given vector.
  MvmmOptions model;

  uint32_t num_shards = 1;

  /// |Q| for smoothing; 0 = largest query id in the corpus + 1. The SAME
  /// value is handed to every shard (per-shard maxima would skew the
  /// sigma-fit smoothing).
  size_t vocabulary_size = 0;

  /// Version tag stamped on every shard snapshot.
  uint64_t version = 1;
};

struct ShardedTrainResult {
  /// One snapshot per shard, all serving with `sigmas`.
  std::vector<std::shared_ptr<const ModelSnapshot>> shards;

  /// The globally fitted (or fixed) per-component Gaussian widths. Feed
  /// them to MvmmOptions::fixed_sigmas for independent shard rebuilds.
  std::vector<double> sigmas;

  /// The resolved global vocabulary bound.
  size_t vocabulary_size = 0;

  /// The per-shard training corpora (`shards[s]` was trained on
  /// `corpora[s]`), kept so callers seeding per-shard retrainers reuse
  /// the partition instead of recomputing it.
  std::vector<std::vector<AggregatedSession>> corpora;
};

/// Trains a sharded fleet from one corpus: partitions the sessions
/// (log/shard_partitioner.h), builds every shard's shared-PST snapshot
/// independently, fits the mixture sigmas ONCE over the full corpus by
/// routing each sample walk to the owning shard's tree, and stamps the
/// global vector onto every shard. The resulting fleet answers every
/// context bit-identically to ModelSnapshot::Build on the undivided
/// corpus (property-tested for shard counts {1, 2, 4, 7}).
Result<ShardedTrainResult> TrainShardedSnapshots(
    const std::vector<AggregatedSession>& corpus,
    const ShardedTrainOptions& options);

/// Persists a trained fleet: one compact blob per shard at
/// `manifest_path + ".shard<k>"` plus the SnapshotManifest at
/// `manifest_path` (shard paths stored relative to it), everything written
/// atomically. The manifest records `partition_function` =
/// kShardPartitionLastQueryFnv1a and the version of shards[0].
Status SaveShardedSnapshots(
    std::span<const std::shared_ptr<const ModelSnapshot>> shards,
    const CompactOptions& compact, const std::string& manifest_path);

/// (Re)writes the manifest at `manifest_path` from the per-shard blobs
/// already on disk at `manifest_path + ".shard<k>"` — e.g. after a
/// ShardedRetrainerSet with persist_path == manifest_path republished
/// some shards — re-pinning their current sizes and checksums. `version`
/// tags the manifest (conventionally the newest shard version).
Status WriteManifestForShardBlobs(const std::string& manifest_path,
                                  size_t num_shards, uint64_t version);

// -------------------------------------------------------------- retraining

/// Per-shard streaming retrain: one Retrainer per shard, each owning its
/// shard's corpus slice and publishing through that shard's engine, all
/// pinned to the bootstrap's global sigma fit so independently rebuilt
/// shards stay weight-consistent with the rest of the fleet. Appended
/// sessions are routed to exactly the shards whose counts they affect
/// (OwningShards), so a shard rebuild folds in precisely the evidence the
/// unsharded retrainer would have given it.
///
/// Shards rebuild independently: RetrainShard(s) advances one shard's
/// version while the others keep serving their current snapshots — the
/// skew between shard versions is bounded by the number of retrain cycles
/// the slowest shard is behind.
///
/// Persistence: when `base.persist_path` is set it doubles as the
/// manifest path — each shard persists to `persist_path + ".shard<s>"`,
/// Bootstrap writes the initial manifest once every blob exists, and
/// every later successful shard persist re-pins the manifest
/// (Retrainer's after_persist hook), so the on-disk fleet stays
/// cold-bootable across background rebuilds, not just at clean exit.
///
/// Threading: AppendSessions and the observers are safe from any thread;
/// per-shard rebuild serialization is inherited from Retrainer.
class ShardedRetrainerSet {
 public:
  /// `base` configures every per-shard retrainer; its model's fixed_sigmas
  /// (if empty) are filled from the bootstrap's global fit, and
  /// vocabulary_size (if 0) from the bootstrap corpus. base.after_persist
  /// must be unset (the set owns that hook for manifest re-pinning).
  ShardedRetrainerSet(ShardedEngine* engine, RetrainerOptions base);
  ~ShardedRetrainerSet();

  ShardedRetrainerSet(const ShardedRetrainerSet&) = delete;
  ShardedRetrainerSet& operator=(const ShardedRetrainerSet&) = delete;

  /// Trains the fleet once (TrainShardedSnapshots, global sigma fit),
  /// seeds one Retrainer per shard with its corpus slice and the prebuilt
  /// shard snapshot (no second tree build), and publishes version 1
  /// everywhere — shards whose slice is empty publish (and, with
  /// persistence, persist) the trained empty snapshot directly. Call
  /// exactly once.
  Status Bootstrap(std::vector<AggregatedSession> corpus);

  /// Routes freshly observed sessions to the owning shards' pending
  /// queues. A shard that bootstrapped empty is lazily bootstrapped on
  /// its first routed sessions (a one-time synchronous build of that
  /// tiny corpus); otherwise this never blocks on a rebuild.
  /// Thread-safe.
  void AppendSessions(const std::vector<AggregatedSession>& sessions);

  /// Fleet spelling of Retrainer::ConsumeFeedback: reads the feedback log
  /// at `dir`, converts clicked impressions past the set's consume
  /// watermark into sessions and routes them through AppendSessions (so
  /// each lands on exactly the shards whose counts it affects, with the
  /// same lazy-bootstrap handling). Returns the number of sessions
  /// routed. Idempotent per record id; same click-before-consume ordering
  /// contract as the single-engine version. Thread-safe.
  Result<size_t> ConsumeFeedback(const std::string& dir);

  /// Rebuilds and republishes one shard (no-op when nothing is pending
  /// there); the rest of the fleet keeps serving untouched.
  Status RetrainShard(size_t s);

  /// RetrainShard over every shard; returns the first error.
  Status RetrainAll();

  /// Starts/stops every shard's background worker (lazily bootstrapped
  /// shards join the running set as they appear).
  void StartAll();
  void StopAll();

  /// Re-pins the manifest at base.persist_path from the shard blobs on
  /// disk (no-op without a persist path). Runs automatically after every
  /// successful shard persist; exposed for callers that move or copy the
  /// snapshot directory. The most recent outcome — including refreshes
  /// triggered by background rebuilds, which have no caller to return to
  /// — is retained in last_manifest_status().
  Status RefreshManifest() const;

  /// Outcome of the most recent manifest re-pin (OK before the first).
  /// A failure here means the on-disk manifest may pin stale blobs and a
  /// fleet cold boot will refuse until a RefreshManifest() succeeds.
  Status last_manifest_status() const;

  size_t num_shards() const { return retrainers_.size(); }
  Retrainer* shard_retrainer(size_t s) { return retrainers_[s].get(); }

  /// The global sigma vector every shard is pinned to (empty before
  /// Bootstrap).
  const std::vector<double>& sigmas() const { return sigmas_; }

 private:
  /// Bootstraps one not-yet-bootstrapped retrainer with `corpus` and
  /// starts its worker if StartAll already ran. append_mu_ must be held.
  Status LazyBootstrapShard(size_t s, std::vector<AggregatedSession> corpus);

  ShardedEngine* engine_;
  RetrainerOptions base_;
  std::vector<std::unique_ptr<Retrainer>> retrainers_;
  std::vector<double> sigmas_;
  std::vector<uint32_t> owners_scratch_;
  std::mutex append_mu_;  // guards owners_scratch_ + lazy bootstraps
  bool workers_started_ = false;  // guarded by append_mu_
  /// Sessions routed to a shard whose lazy bootstrap has not succeeded
  /// yet — retained (never dropped) and retried with the next append.
  /// Guarded by append_mu_.
  std::vector<std::vector<AggregatedSession>> lazy_pending_;
  /// Serializes ConsumeFeedback and guards the fleet's consume watermark.
  std::mutex feedback_mu_;
  uint64_t feedback_watermark_ = 0;
  std::atomic<bool> refresh_enabled_{false};
  /// Serializes manifest rewrites and guards manifest_status_.
  mutable std::mutex manifest_mu_;
  mutable Status manifest_status_;
};

}  // namespace sqp

#endif  // SQP_SERVE_SHARDED_ENGINE_H_
