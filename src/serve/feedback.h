#ifndef SQP_SERVE_FEEDBACK_H_
#define SQP_SERVE_FEEDBACK_H_

/// Closed-loop serving, part 1: the feedback log. Every served
/// recommendation can be recorded as an *impression* — (context, the
/// served top-N with per-item sampling propensities, the policy that
/// produced the order) — and every observed click as a *click* record
/// referencing the impression it landed on. The resulting stream is what
/// turns a static-corpus recommender into a system that learns from its
/// own traffic: `Retrainer::ConsumeFeedback` folds clicked impressions
/// back into the training corpus, and `eval/ips.h` uses the logged
/// propensities for unbiased (inverse-propensity-scored) evaluation.
///
/// The on-disk format (byte-level layout in docs/FEEDBACK.md, pinned by
/// tests/data/golden_feedback_v1.seg) is a bounded, crash-safe,
/// append-only segment log:
///  - versioned little-endian records framed as
///    [u32 body_len][body][u32 crc32(body)] via util/byte_io — a torn or
///    corrupt tail record is detected and dropped on read, never served
///    as garbage;
///  - the active segment `feedback.<seq>.open` is sealed by an atomic
///    rename to `feedback.<seq>.seg` when it reaches max_segment_bytes;
///  - at most max_segments sealed segments are retained (oldest deleted
///    on rotation), so the log's disk footprint is bounded regardless of
///    traffic.
///
/// Serving integration: engines write impressions behind the
/// `ServeOptions::feedback` hook (serve/deadline.h). With no hook — or a
/// hook whose explorer is disabled (policy none / epsilon 0) — served
/// answers are bit-identical to pre-feedback serving; the hook only ever
/// *appends observations*, it cannot change what the greedy walk returns
/// (enforced by bench/closed_loop and tests/serve/closed_loop_test.cc).

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/prediction_model.h"
#include "log/types.h"
#include "util/status.h"

namespace sqp {

class Explorer;

/// Exploration policy identifiers, persisted as u8 in impression records
/// (pinned values — extend, never renumber). The policy set mirrors
/// vw_slim's `vw_predict_exploration` (epsilon-greedy / softmax / bag).
enum class ExplorePolicy : uint8_t {
  kNone = 0,
  kEpsilonGreedy = 1,
  kSoftmax = 2,
  kBag = 3,
};

const char* ExplorePolicyName(ExplorePolicy policy);

/// One served slot of an impression: the query, the model score it was
/// served with, and the probability the exploration policy had of putting
/// this item at slot 1 (the "sampling propensity" — 1.0 at slot 1 and 0.0
/// elsewhere for pure greedy serving). Propensities are logged with every
/// served item so off-policy evaluation can reweight without re-serving.
struct ServedItem {
  QueryId query = kInvalidQueryId;
  double score = 0.0;
  double propensity = 0.0;

  bool operator==(const ServedItem&) const = default;
};

inline constexpr uint32_t kFeedbackNoClick = 0xffffffffu;

/// One joined feedback record: an impression plus the click (if any) that
/// later referenced it. `record_id` is a process-lifetime-monotonic
/// sequence number assigned at serve time; reranking is deterministic per
/// record id (see Explorer), so a logged stream can be replayed exactly.
struct FeedbackRecord {
  uint64_t record_id = 0;
  uint64_t snapshot_version = 0;
  ExplorePolicy policy = ExplorePolicy::kNone;
  double policy_param = 0.0;
  std::vector<QueryId> context;
  std::vector<ServedItem> served;
  /// 0-based served slot the user clicked, kFeedbackNoClick when no click
  /// record referenced this impression.
  uint32_t clicked_position = kFeedbackNoClick;

  bool operator==(const FeedbackRecord&) const = default;
};

struct FeedbackLogOptions {
  /// Directory holding the segment files. Created if missing.
  std::string dir;

  /// Active-segment size that triggers rotation. A single record larger
  /// than this still gets written (records are never split), in a
  /// segment of its own.
  size_t max_segment_bytes = 1 << 20;

  /// Sealed segments retained; the oldest is deleted when rotation would
  /// exceed this. Bounds the log's disk footprint.
  size_t max_segments = 8;
};

/// Writer-side counters (monotonic since Open).
struct FeedbackLogStats {
  uint64_t impressions_appended = 0;
  uint64_t clicks_appended = 0;
  /// Appends that failed at the stream level (disk full, unlinked dir).
  /// Serving never fails on a log error — the record is dropped and
  /// counted here.
  uint64_t dropped_appends = 0;
  uint64_t segments_sealed = 0;
  uint64_t segments_deleted = 0;
  uint64_t active_segment_bytes = 0;
};

/// What the reader observed while scanning a log directory.
struct FeedbackReadReport {
  size_t impressions = 0;
  size_t clicks = 0;
  /// Records dropped because the segment ended mid-record (a crash tore
  /// the tail) or a CRC failed; the rest of that segment is skipped.
  size_t torn_records = 0;
  /// Click records whose impression id was not in the scanned segments
  /// (e.g. the impression's segment was already rotated out).
  size_t unmatched_clicks = 0;
};

/// The bounded append-only feedback log writer. Thread-safe: any number
/// of serving threads may append concurrently (appends serialize on one
/// mutex — the serving hot path writes one small record per request, see
/// BENCH_feedback.json for the measured cost).
class FeedbackLog {
 public:
  /// Opens (or creates) the log in options.dir. An `.open` segment left
  /// behind by a crashed process is recovered: its valid prefix is sealed
  /// (torn tail truncated) and a fresh active segment is started; record
  /// ids continue after the largest recovered id.
  static Result<std::unique_ptr<FeedbackLog>> Open(FeedbackLogOptions options);

  ~FeedbackLog();

  FeedbackLog(const FeedbackLog&) = delete;
  FeedbackLog& operator=(const FeedbackLog&) = delete;

  /// Reserves the next impression record id (> 0, strictly increasing).
  /// Taken *before* reranking so the explorer's per-record determinism is
  /// keyed on the id the record will carry.
  uint64_t NextRecordId() {
    return next_record_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends one impression. `record.clicked_position` is ignored on
  /// write (clicks are separate records, joined at read time).
  Status AppendImpression(const FeedbackRecord& record);

  /// Appends a click record referencing a previously served impression.
  Status RecordClick(uint64_t impression_record_id, uint32_t position);

  /// Seals the active segment (atomic rename to `.seg`) if it holds any
  /// records. The next append starts a fresh segment. Idempotent.
  Status Seal();

  /// Flushes the active segment's stream buffer.
  Status Flush();

  const FeedbackLogOptions& options() const { return options_; }
  FeedbackLogStats stats() const;

 private:
  explicit FeedbackLog(FeedbackLogOptions options);

  std::string SegmentPath(uint64_t seq, bool sealed) const;
  /// Opens feedback.<active_seq_>.open and writes the segment header.
  /// io_mu_ must be held.
  Status StartSegment();
  /// Appends one framed record body; rotates first when the segment is
  /// full. io_mu_ must be held.
  Status AppendBody(const std::vector<uint8_t>& body, bool is_click);
  /// Seal + prune. io_mu_ must be held.
  Status SealLocked();

  FeedbackLogOptions options_;
  std::atomic<uint64_t> next_record_id_{1};

  mutable std::mutex io_mu_;
  std::ofstream out_;
  uint64_t active_seq_ = 0;
  uint64_t active_bytes_ = 0;
  uint64_t active_records_ = 0;
  std::vector<uint64_t> sealed_seqs_;  // ascending

  std::atomic<uint64_t> impressions_appended_{0};
  std::atomic<uint64_t> clicks_appended_{0};
  std::atomic<uint64_t> dropped_appends_{0};
  std::atomic<uint64_t> segments_sealed_{0};
  std::atomic<uint64_t> segments_deleted_{0};
};

/// Reads every segment (sealed first, then the active one) in sequence
/// order and returns the *joined* impressions — clicks folded into their
/// impression's `clicked_position` — sorted by record id. Torn or corrupt
/// records end their segment's scan (counted in the report); other
/// segments are unaffected. An empty or missing directory yields an empty
/// vector, not an error (a fresh deployment has no feedback yet).
Result<std::vector<FeedbackRecord>> ReadFeedbackLog(
    const std::string& dir, FeedbackReadReport* report = nullptr);

/// Converts clicked impressions into training sessions: each record with
/// a valid clicked_position becomes AggregatedSession{context + clicked
/// query, 1}, in record-id order. Records with no click, an empty
/// context, or an out-of-range position contribute nothing. Appending the
/// result to a Retrainer is exactly equivalent to appending the same
/// sessions directly (tested in tests/serve/closed_loop_test.cc).
std::vector<AggregatedSession> SessionsFromFeedback(
    std::span<const FeedbackRecord> records);

/// The serving-side hook carried by ServeOptions::feedback: reranks the
/// served list through `explorer` (when set) and appends the impression
/// to `log` (when set). Either member may be null — explore-only serving
/// is possible but loses the propensity trail, so the CLI requires a log
/// whenever exploration is on. Thread-safe; owned by the caller and
/// shared by any number of concurrent requests.
struct FeedbackHook {
  FeedbackLog* log = nullptr;
  const Explorer* explorer = nullptr;

  /// Applies the hook to one served answer: no-op for uncovered/empty
  /// results; otherwise reranks in place (identity when exploration is
  /// off) and logs the impression. Returns the impression's record id (0
  /// when nothing was logged) so callers can attribute later clicks.
  uint64_t OnServed(std::span<const QueryId> context, uint64_t served_version,
                    Recommendation* rec) const;

 private:
  /// Record ids for hooks without a log (exploration still needs a
  /// deterministic per-record key).
  mutable std::atomic<uint64_t> unlogged_id_{1};
};

}  // namespace sqp

#endif  // SQP_SERVE_FEEDBACK_H_
