#include "serve/explorer.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "util/random.h"

namespace sqp {
namespace {

/// Mixes the base seed with the record id so consecutive records get
/// decorrelated streams; the Rng constructor's SplitMix64 finishes the
/// job. Pure function — no draw-count coupling between records.
Rng RecordRng(uint64_t seed, uint64_t record_id) {
  return Rng(seed ^ (record_id * 0x9E3779B97F4A7C15ULL));
}

/// Samples an index from a pmf (cumulative walk). The pmf sums to 1 by
/// construction; the last index absorbs any floating-point shortfall.
size_t SamplePmf(std::span<const double> pmf, Rng* rng) {
  const double u = rng->UniformDouble();
  double cum = 0.0;
  for (size_t i = 0; i < pmf.size(); ++i) {
    cum += pmf[i];
    if (u < cum) return i;
  }
  return pmf.size() - 1;
}

/// One score-proportional draw (cumulative-weight inversion). Items with
/// non-positive scores get no mass unless every item is non-positive, in
/// which case the draw degenerates to uniform.
size_t SampleProportional(std::span<const ScoredQuery> queries, Rng* rng) {
  double total = 0.0;
  for (const ScoredQuery& q : queries) total += std::max(q.score, 0.0);
  if (!(total > 0.0)) {
    return static_cast<size_t>(rng->UniformInt(queries.size()));
  }
  const double u = rng->UniformDouble() * total;
  double cum = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    cum += std::max(queries[i].score, 0.0);
    if (u < cum) return i;
  }
  return queries.size() - 1;
}

}  // namespace

Result<ExplorerOptions> ParseExplorerSpec(const std::string& spec,
                                          uint64_t seed) {
  ExplorerOptions options;
  options.seed = seed;
  if (spec.empty() || spec == "none") {
    return options;
  }
  const size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  double param = 0.0;
  bool have_param = false;
  if (colon != std::string::npos) {
    const std::string text = spec.substr(colon + 1);
    char* end = nullptr;
    param = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size()) {
      return Status::InvalidArgument("bad explore parameter '" + text +
                                     "' in spec '" + spec + "'");
    }
    have_param = true;
  }

  if (name == "epsilon" || name == "epsilon_greedy") {
    if (!have_param) {
      return Status::InvalidArgument(
          "epsilon policy needs a parameter, e.g. epsilon:0.1");
    }
    if (!(param >= 0.0 && param <= 1.0)) {
      return Status::OutOfRange("epsilon must be in [0,1], got '" + spec + "'");
    }
    options.policy = ExplorePolicy::kEpsilonGreedy;
    options.param = param;
  } else if (name == "softmax") {
    if (!have_param) {
      return Status::InvalidArgument(
          "softmax policy needs a lambda, e.g. softmax:8");
    }
    if (!(param >= 0.0) || !std::isfinite(param)) {
      return Status::OutOfRange("softmax lambda must be finite and >= 0, got '" +
                                spec + "'");
    }
    options.policy = ExplorePolicy::kSoftmax;
    options.param = param;
  } else if (name == "bag") {
    if (!have_param) {
      return Status::InvalidArgument("bag policy needs a size, e.g. bag:4");
    }
    if (!(param >= 1.0 && param <= 64.0) || param != std::floor(param)) {
      return Status::OutOfRange("bag size must be an integer in [1,64], got '" +
                                spec + "'");
    }
    options.policy = ExplorePolicy::kBag;
    options.param = param;
  } else {
    return Status::InvalidArgument(
        "unknown explore policy '" + name +
        "' (expected none, epsilon, softmax, or bag)");
  }
  return options;
}

Explorer::Explorer(ExplorerOptions options) : options_(std::move(options)) {
  switch (options_.policy) {
    case ExplorePolicy::kNone:
      enabled_ = false;
      break;
    case ExplorePolicy::kEpsilonGreedy:
      enabled_ = options_.param > 0.0;
      break;
    case ExplorePolicy::kSoftmax:
    case ExplorePolicy::kBag:
      enabled_ = true;
      break;
  }
}

void Explorer::SlotOnePmf(std::span<const ScoredQuery> queries,
                          std::vector<double>* pmf) const {
  pmf->assign(queries.size(), 0.0);
  if (queries.empty()) return;
  const size_t k = queries.size();
  if (!enabled_ || k == 1) {
    (*pmf)[0] = 1.0;
    return;
  }
  switch (options_.policy) {
    case ExplorePolicy::kNone:
      (*pmf)[0] = 1.0;
      break;
    case ExplorePolicy::kEpsilonGreedy: {
      // VW epsilon-greedy: epsilon spread uniformly over all arms, the
      // remaining 1-epsilon on the greedy (already-first) arm.
      const double eps = options_.param;
      for (double& p : *pmf) p = eps / static_cast<double>(k);
      (*pmf)[0] += 1.0 - eps;
      break;
    }
    case ExplorePolicy::kSoftmax: {
      // pmf_i ∝ exp(lambda * (score_i - max_score)); the max subtraction
      // keeps the exponentials in range. lambda = 0 is uniform; larger
      // lambda sharpens toward greedy.
      const double lambda = options_.param;
      double max_score = queries[0].score;
      for (const ScoredQuery& q : queries) max_score = std::max(max_score, q.score);
      double total = 0.0;
      for (size_t i = 0; i < k; ++i) {
        (*pmf)[i] = std::exp(lambda * (queries[i].score - max_score));
        total += (*pmf)[i];
      }
      for (double& p : *pmf) p /= total;
      break;
    }
    case ExplorePolicy::kBag: {
      // Handled per record in Rerank (the votes are part of the record's
      // deterministic draw stream); without a record there is no pmf, so
      // report the greedy point mass.
      (*pmf)[0] = 1.0;
      break;
    }
  }
}

void Explorer::Rerank(uint64_t record_id, std::vector<ScoredQuery>* queries,
                      std::vector<double>* propensities) const {
  propensities->clear();
  if (queries->empty()) return;
  const size_t k = queries->size();
  if (!enabled_ || k == 1) {
    propensities->assign(k, 0.0);
    (*propensities)[0] = 1.0;
    return;
  }

  Rng rng = RecordRng(options_.seed, record_id);
  std::vector<double> pmf;
  if (options_.policy == ExplorePolicy::kBag) {
    // Bagging emulation: B pseudo-bags each cast one score-proportional
    // vote for their "own model's" greedy arm; the slot-1 pmf is the
    // vote histogram, so any arm with a vote has propensity >= 1/B.
    const size_t bags = static_cast<size_t>(options_.param);
    pmf.assign(k, 0.0);
    for (size_t b = 0; b < bags; ++b) {
      pmf[SampleProportional(*queries, &rng)] += 1.0;
    }
    for (double& p : pmf) p /= static_cast<double>(bags);
  } else {
    SlotOnePmf(*queries, &pmf);
  }

  const size_t winner = SamplePmf(pmf, &rng);
  if (winner != 0) {
    // A swap, not a resort: every item keeps its model score bit for bit,
    // and slots other than {0, winner} keep their order.
    std::swap((*queries)[0], (*queries)[winner]);
    std::swap(pmf[0], pmf[winner]);
  }
  *propensities = std::move(pmf);
}

}  // namespace sqp
