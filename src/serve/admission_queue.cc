#include "serve/admission_queue.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <string>

namespace sqp {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

size_t LatencyBucket(double latency_us) {
  if (!(latency_us > 1.0)) return 0;
  const auto us = static_cast<uint64_t>(latency_us);
  return std::min<size_t>(std::bit_width(us), kLatencyBuckets - 1);
}

void LaneCounters::MergeFrom(const LaneCounters& other) {
  admitted += other.admitted;
  shed_queue_full += other.shed_queue_full;
  shed_deadline += other.shed_deadline;
  expired_in_queue += other.expired_in_queue;
  expired_items += other.expired_items;
  degraded += other.degraded;
  for (size_t b = 0; b < kLatencyBuckets; ++b) {
    latency_hist[b] += other.latency_hist[b];
  }
}

void AdmissionStats::MergeFrom(const AdmissionStats& other) {
  for (size_t l = 0; l < kNumQosLanes; ++l) {
    lanes[l].MergeFrom(other.lanes[l]);
  }
}

AdmissionQueue::AdmissionQueue(AdmissionOptions options)
    : options_(options), ewma_us_per_item_(options.initial_service_us_per_item) {
  options_.interactive_capacity =
      std::max<size_t>(1, options_.interactive_capacity);
  options_.bulk_capacity = std::max<size_t>(1, options_.bulk_capacity);
  if (options_.ewma_alpha <= 0.0 || options_.ewma_alpha > 1.0) {
    options_.ewma_alpha = 0.2;
  }
  if (!(ewma_us_per_item_ > 0.0)) ewma_us_per_item_ = 0.5;
  const double total_capacity = static_cast<double>(
      options_.interactive_capacity + options_.bulk_capacity);
  degrade_threshold_jobs_ =
      options_.degrade_pressure >= 1.0
          ? SIZE_MAX
          : std::max<size_t>(
                1, static_cast<size_t>(std::ceil(
                       options_.degrade_pressure * total_capacity)));
}

double AdmissionQueue::ItemsAheadLocked(QosLane lane) const {
  double ahead = static_cast<double>(running_items_) +
                 static_cast<double>(
                     waiting_items_[static_cast<size_t>(QosLane::kInteractive)]);
  if (lane == QosLane::kBulk) {
    ahead += static_cast<double>(
        waiting_items_[static_cast<size_t>(QosLane::kBulk)]);
  }
  return ahead;
}

void AdmissionQueue::MaybeGrantLocked() {
  if (busy_) return;
  for (size_t l = 0; l < kNumQosLanes; ++l) {
    std::deque<Waiter*>& lane_queue = waiting_[l];
    if (lane_queue.empty()) continue;
    Waiter* next = lane_queue.front();
    lane_queue.pop_front();
    waiting_items_[l] -= next->items;
    waiting_jobs_total_.fetch_sub(1, kRelaxed);
    next->granted = true;
    busy_ = true;
    running_items_ = next->items;
    cv_.notify_all();
    return;
  }
}

Status AdmissionQueue::Admit(QosLane lane, const Deadline& deadline,
                             size_t num_items) {
  const size_t l = static_cast<size_t>(lane);
  const Deadline::Clock::time_point now = Deadline::Clock::now();
  if (deadline.Expired(now)) {
    counters_[l].shed_deadline.fetch_add(1, kRelaxed);
    return Status::DeadlineExceeded("deadline expired before admission");
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (deadline.bounded()) {
    const double estimated_us =
        (ItemsAheadLocked(lane) + static_cast<double>(num_items)) *
        ewma_us_per_item_;
    if (estimated_us > deadline.RemainingMicros(now)) {
      counters_[l].shed_deadline.fetch_add(1, kRelaxed);
      return Status::DeadlineExceeded(
          "projected completion overruns the deadline (estimated " +
          std::to_string(static_cast<uint64_t>(estimated_us)) + "us of " +
          QosLaneName(lane) + "-visible backlog)");
    }
    if (waiting_[l].size() >= capacity(lane)) {
      counters_[l].shed_queue_full.fetch_add(1, kRelaxed);
      return Status::ResourceExhausted(
          std::string(QosLaneName(lane)) + " admission lane full (" +
          std::to_string(capacity(lane)) + " waiting jobs)");
    }
  }

  Waiter self;
  self.items = num_items;
  waiting_[l].push_back(&self);
  waiting_items_[l] += num_items;
  waiting_jobs_total_.fetch_add(1, kRelaxed);
  MaybeGrantLocked();

  if (deadline.bounded()) {
    if (!cv_.wait_until(lock, deadline.time(),
                        [&] { return self.granted; })) {
      // Timed out while waiting; leave the queue without the slot.
      std::deque<Waiter*>& lane_queue = waiting_[l];
      lane_queue.erase(std::find(lane_queue.begin(), lane_queue.end(), &self));
      waiting_items_[l] -= num_items;
      waiting_jobs_total_.fetch_sub(1, kRelaxed);
      counters_[l].expired_in_queue.fetch_add(1, kRelaxed);
      return Status::DeadlineExceeded(
          "deadline expired waiting for admission");
    }
  } else {
    cv_.wait(lock, [&] { return self.granted; });
  }
  return Status::OK();
}

void AdmissionQueue::Release(size_t items_served, double service_us) {
  std::lock_guard<std::mutex> lock(mu_);
  busy_ = false;
  running_items_ = 0;
  if (items_served > 0 && service_us > 0.0) {
    const double per_item = service_us / static_cast<double>(items_served);
    ewma_us_per_item_ = options_.ewma_alpha * per_item +
                        (1.0 - options_.ewma_alpha) * ewma_us_per_item_;
  }
  MaybeGrantLocked();
}

size_t AdmissionQueue::DegradedTopN(size_t top_n,
                                    const Deadline& deadline) const {
  if (!deadline.bounded() || top_n <= options_.degrade_min_top_n) {
    return top_n;
  }
  if (waiting_jobs_total_.load(kRelaxed) < degrade_threshold_jobs_) {
    return top_n;
  }
  return std::max(options_.degrade_min_top_n, top_n / 2);
}

void AdmissionQueue::RecordServed(QosLane lane, double latency_us,
                                  bool degraded, size_t expired_items) {
  AtomicLane& counters = counters_[static_cast<size_t>(lane)];
  counters.admitted.fetch_add(1, kRelaxed);
  counters.latency_hist[LatencyBucket(latency_us)].fetch_add(1, kRelaxed);
  if (degraded) counters.degraded.fetch_add(1, kRelaxed);
  if (expired_items > 0) {
    counters.expired_items.fetch_add(expired_items, kRelaxed);
  }
}

void AdmissionQueue::CountShed(QosLane lane, StatusCode code) {
  AtomicLane& counters = counters_[static_cast<size_t>(lane)];
  if (code == StatusCode::kResourceExhausted) {
    counters.shed_queue_full.fetch_add(1, kRelaxed);
  } else {
    counters.shed_deadline.fetch_add(1, kRelaxed);
  }
}

size_t AdmissionQueue::waiting_jobs(QosLane lane) const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_[static_cast<size_t>(lane)].size();
}

AdmissionStats AdmissionQueue::stats() const {
  AdmissionStats stats;
  for (size_t l = 0; l < kNumQosLanes; ++l) {
    const AtomicLane& in = counters_[l];
    LaneCounters& out = stats.lanes[l];
    out.admitted = in.admitted.load(kRelaxed);
    out.shed_queue_full = in.shed_queue_full.load(kRelaxed);
    out.shed_deadline = in.shed_deadline.load(kRelaxed);
    out.expired_in_queue = in.expired_in_queue.load(kRelaxed);
    out.expired_items = in.expired_items.load(kRelaxed);
    out.degraded = in.degraded.load(kRelaxed);
    for (size_t b = 0; b < kLatencyBuckets; ++b) {
      out.latency_hist[b] = in.latency_hist[b].load(kRelaxed);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.ewma_service_us_per_item = ewma_us_per_item_;
  }
  return stats;
}

}  // namespace sqp
