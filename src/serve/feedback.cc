#include "serve/feedback.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <unordered_map>
#include <utility>

#include "serve/explorer.h"
#include "util/byte_io.h"

namespace sqp {
namespace {

namespace fs = std::filesystem;

// Segment header: magic "SQFB" (LE u32), u16 format version, u16 reserved.
constexpr uint32_t kSegmentMagic = 0x42465153u;
constexpr uint16_t kSegmentFormatVersion = 1;
constexpr size_t kSegmentHeaderBytes = 8;

// Record body leads with [u8 record type][u8 record version].
constexpr uint8_t kRecordImpression = 1;
constexpr uint8_t kRecordClick = 2;
constexpr uint8_t kRecordVersion = 1;

// Defensive caps on CRC-validated lengths, so a hostile file cannot make
// the reader allocate unbounded memory.
constexpr uint32_t kMaxBodyBytes = 1u << 26;
constexpr uint32_t kMaxListLen = 1u << 20;

void AppendU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  uint8_t b[4];
  StoreLE32(b, v);
  out->insert(out->end(), b, b + 4);
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  uint8_t b[8];
  StoreLE64(b, v);
  out->insert(out->end(), b, b + 8);
}

void AppendF64(std::vector<uint8_t>* out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

std::vector<uint8_t> EncodeImpressionBody(const FeedbackRecord& record) {
  std::vector<uint8_t> body;
  body.reserve(40 + record.context.size() * 4 + record.served.size() * 20);
  AppendU8(&body, kRecordImpression);
  AppendU8(&body, kRecordVersion);
  AppendU64(&body, record.record_id);
  AppendU64(&body, record.snapshot_version);
  AppendU8(&body, static_cast<uint8_t>(record.policy));
  AppendF64(&body, record.policy_param);
  AppendU32(&body, static_cast<uint32_t>(record.context.size()));
  AppendU32(&body, static_cast<uint32_t>(record.served.size()));
  for (QueryId q : record.context) AppendU32(&body, q);
  for (const ServedItem& item : record.served) {
    AppendU32(&body, item.query);
    AppendF64(&body, item.score);
    AppendF64(&body, item.propensity);
  }
  return body;
}

std::vector<uint8_t> EncodeClickBody(uint64_t impression_record_id,
                                     uint32_t position) {
  std::vector<uint8_t> body;
  body.reserve(14);
  AppendU8(&body, kRecordClick);
  AppendU8(&body, kRecordVersion);
  AppendU64(&body, impression_record_id);
  AppendU32(&body, position);
  return body;
}

/// Cursor over one decoded record body (already CRC-validated).
struct BodyCursor {
  const uint8_t* p;
  const uint8_t* end;

  bool U8(uint8_t* v) {
    if (end - p < 1) return false;
    *v = *p++;
    return true;
  }
  bool U32(uint32_t* v) {
    if (end - p < 4) return false;
    *v = LoadLE32(p);
    p += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (end - p < 8) return false;
    *v = LoadLE64(p);
    p += 8;
    return true;
  }
  bool F64(double* v) {
    uint64_t u;
    if (!U64(&u)) return false;
    *v = std::bit_cast<double>(u);
    return true;
  }
};

struct ClickEvent {
  uint64_t impression_record_id;
  uint32_t position;
};

/// What one segment scan produced. `valid_bytes` is the byte offset of the
/// end of the last intact record — the truncation point for crash recovery.
struct SegmentScan {
  std::vector<FeedbackRecord> impressions;
  std::vector<ClickEvent> clicks;
  size_t torn_records = 0;
  uint64_t valid_bytes = 0;
  bool header_ok = false;
};

bool DecodeImpression(BodyCursor cur, FeedbackRecord* out) {
  uint8_t policy = 0;
  uint32_t context_len = 0;
  uint32_t served_len = 0;
  if (!cur.U64(&out->record_id) || !cur.U64(&out->snapshot_version) ||
      !cur.U8(&policy) || !cur.F64(&out->policy_param) ||
      !cur.U32(&context_len) || !cur.U32(&served_len)) {
    return false;
  }
  if (context_len > kMaxListLen || served_len > kMaxListLen) return false;
  out->policy = static_cast<ExplorePolicy>(policy);
  out->context.resize(context_len);
  for (uint32_t i = 0; i < context_len; ++i) {
    if (!cur.U32(&out->context[i])) return false;
  }
  out->served.resize(served_len);
  for (uint32_t i = 0; i < served_len; ++i) {
    ServedItem& item = out->served[i];
    if (!cur.U32(&item.query) || !cur.F64(&item.score) ||
        !cur.F64(&item.propensity)) {
      return false;
    }
  }
  out->clicked_position = kFeedbackNoClick;
  return true;
}

SegmentScan ScanSegment(const std::string& path) {
  SegmentScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in) return scan;

  uint8_t header[kSegmentHeaderBytes];
  if (!in.read(reinterpret_cast<char*>(header), sizeof(header))) return scan;
  if (LoadLE32(header) != kSegmentMagic ||
      LoadLE16(header + 4) != kSegmentFormatVersion) {
    return scan;
  }
  scan.header_ok = true;
  scan.valid_bytes = kSegmentHeaderBytes;

  std::vector<uint8_t> body;
  for (;;) {
    uint8_t len_bytes[4];
    if (!in.read(reinterpret_cast<char*>(len_bytes), 4)) break;  // clean EOF
    const uint32_t body_len = LoadLE32(len_bytes);
    if (body_len < 2 || body_len > kMaxBodyBytes) {
      ++scan.torn_records;
      break;
    }
    body.resize(body_len);
    uint8_t crc_bytes[4];
    if (!in.read(reinterpret_cast<char*>(body.data()), body_len) ||
        !in.read(reinterpret_cast<char*>(crc_bytes), 4)) {
      ++scan.torn_records;  // the tail record was torn mid-write
      break;
    }
    if (Crc32(body.data(), body.size()) != LoadLE32(crc_bytes)) {
      ++scan.torn_records;
      break;
    }
    BodyCursor cur{body.data() + 2, body.data() + body.size()};
    const uint8_t type = body[0];
    const uint8_t version = body[1];
    bool decoded = false;
    if (version == kRecordVersion && type == kRecordImpression) {
      FeedbackRecord record;
      if (DecodeImpression(cur, &record)) {
        scan.impressions.push_back(std::move(record));
        decoded = true;
      }
    } else if (version == kRecordVersion && type == kRecordClick) {
      ClickEvent click{};
      if (cur.U64(&click.impression_record_id) && cur.U32(&click.position)) {
        scan.clicks.push_back(click);
        decoded = true;
      }
    } else {
      // An unknown record type/version with a valid CRC is a future
      // format extension, not corruption: skip it, keep scanning.
      decoded = true;
    }
    if (!decoded) {
      ++scan.torn_records;
      break;
    }
    scan.valid_bytes += 8 + body_len;
  }
  return scan;
}

/// Parses "feedback.<seq>.seg" / "feedback.<seq>.open" filenames.
bool ParseSegmentName(const std::string& name, uint64_t* seq, bool* sealed) {
  constexpr std::string_view kPrefix = "feedback.";
  if (name.size() <= kPrefix.size() || name.compare(0, kPrefix.size(), kPrefix)) {
    return false;
  }
  size_t pos = kPrefix.size();
  uint64_t value = 0;
  size_t digits = 0;
  while (pos < name.size() && name[pos] >= '0' && name[pos] <= '9') {
    value = value * 10 + static_cast<uint64_t>(name[pos] - '0');
    ++pos;
    ++digits;
  }
  if (digits == 0) return false;
  const std::string_view rest(name.c_str() + pos);
  if (rest == ".seg") {
    *sealed = true;
  } else if (rest == ".open") {
    *sealed = false;
  } else {
    return false;
  }
  *seq = value;
  return true;
}

}  // namespace

const char* ExplorePolicyName(ExplorePolicy policy) {
  switch (policy) {
    case ExplorePolicy::kNone:
      return "none";
    case ExplorePolicy::kEpsilonGreedy:
      return "epsilon";
    case ExplorePolicy::kSoftmax:
      return "softmax";
    case ExplorePolicy::kBag:
      return "bag";
  }
  return "unknown";
}

FeedbackLog::FeedbackLog(FeedbackLogOptions options)
    : options_(std::move(options)) {}

FeedbackLog::~FeedbackLog() {
  std::lock_guard<std::mutex> lock(io_mu_);
  if (out_.is_open()) out_.close();
  // The .open segment stays behind; the next Open() seals its valid
  // prefix, so nothing written before destruction is lost.
}

std::string FeedbackLog::SegmentPath(uint64_t seq, bool sealed) const {
  char name[64];
  std::snprintf(name, sizeof(name), "feedback.%06llu.%s",
                static_cast<unsigned long long>(seq), sealed ? "seg" : "open");
  return (fs::path(options_.dir) / name).string();
}

Result<std::unique_ptr<FeedbackLog>> FeedbackLog::Open(
    FeedbackLogOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("feedback log dir must not be empty");
  }
  if (options.max_segments == 0) {
    return Status::InvalidArgument("feedback log max_segments must be > 0");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::IOError("cannot create feedback dir " + options.dir + ": " +
                           ec.message());
  }

  auto log = std::unique_ptr<FeedbackLog>(new FeedbackLog(std::move(options)));

  // Inventory existing segments.
  std::vector<uint64_t> sealed;
  std::vector<uint64_t> open_segs;
  for (const auto& entry : fs::directory_iterator(log->options_.dir, ec)) {
    uint64_t seq = 0;
    bool is_sealed = false;
    if (!ParseSegmentName(entry.path().filename().string(), &seq, &is_sealed)) {
      continue;
    }
    (is_sealed ? sealed : open_segs).push_back(seq);
  }
  if (ec) {
    return Status::IOError("cannot list feedback dir " + log->options_.dir +
                           ": " + ec.message());
  }
  std::sort(sealed.begin(), sealed.end());
  std::sort(open_segs.begin(), open_segs.end());

  uint64_t max_seq = 0;
  uint64_t max_record_id = 0;
  for (uint64_t seq : sealed) {
    max_seq = std::max(max_seq, seq);
    SegmentScan scan = ScanSegment(log->SegmentPath(seq, /*sealed=*/true));
    for (const FeedbackRecord& record : scan.impressions) {
      max_record_id = std::max(max_record_id, record.record_id);
    }
  }

  // Recover .open segments left by a crashed (or just destroyed) writer:
  // truncate the torn tail and seal the valid prefix; delete empty ones.
  for (uint64_t seq : open_segs) {
    max_seq = std::max(max_seq, seq);
    const std::string open_path = log->SegmentPath(seq, /*sealed=*/false);
    SegmentScan scan = ScanSegment(open_path);
    const bool has_records = !scan.impressions.empty() || !scan.clicks.empty();
    if (!scan.header_ok || !has_records) {
      fs::remove(open_path, ec);
      continue;
    }
    for (const FeedbackRecord& record : scan.impressions) {
      max_record_id = std::max(max_record_id, record.record_id);
    }
    fs::resize_file(open_path, scan.valid_bytes, ec);
    if (ec) {
      return Status::IOError("cannot truncate torn feedback segment " +
                             open_path + ": " + ec.message());
    }
    fs::rename(open_path, log->SegmentPath(seq, /*sealed=*/true), ec);
    if (ec) {
      return Status::IOError("cannot seal recovered feedback segment " +
                             open_path + ": " + ec.message());
    }
    sealed.push_back(seq);
  }
  std::sort(sealed.begin(), sealed.end());

  log->sealed_seqs_ = std::move(sealed);
  log->next_record_id_.store(max_record_id + 1, std::memory_order_relaxed);
  log->active_seq_ = max_seq + 1;
  {
    std::lock_guard<std::mutex> lock(log->io_mu_);
    SQP_RETURN_IF_ERROR(log->StartSegment());
    // Enforce the retention bound immediately: a reopened log may have
    // inherited more sealed segments than options allow.
    while (log->sealed_seqs_.size() > log->options_.max_segments) {
      fs::remove(log->SegmentPath(log->sealed_seqs_.front(), true), ec);
      log->sealed_seqs_.erase(log->sealed_seqs_.begin());
      log->segments_deleted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return log;
}

Status FeedbackLog::StartSegment() {
  const std::string path = SegmentPath(active_seq_, /*sealed=*/false);
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    return Status::IOError("cannot open feedback segment " + path);
  }
  uint8_t header[kSegmentHeaderBytes];
  StoreLE32(header, kSegmentMagic);
  StoreLE16(header + 4, kSegmentFormatVersion);
  StoreLE16(header + 6, 0);
  out_.write(reinterpret_cast<const char*>(header), sizeof(header));
  if (!out_) {
    return Status::IOError("cannot write feedback segment header to " + path);
  }
  active_bytes_ = kSegmentHeaderBytes;
  active_records_ = 0;
  return Status::OK();
}

Status FeedbackLog::SealLocked() {
  if (active_records_ == 0) return Status::OK();
  out_.flush();
  out_.close();
  if (out_.fail()) {
    return Status::IOError("feedback segment close failed");
  }
  std::error_code ec;
  fs::rename(SegmentPath(active_seq_, false), SegmentPath(active_seq_, true),
             ec);
  if (ec) {
    return Status::IOError("cannot seal feedback segment: " + ec.message());
  }
  sealed_seqs_.push_back(active_seq_);
  segments_sealed_.fetch_add(1, std::memory_order_relaxed);
  while (sealed_seqs_.size() > options_.max_segments) {
    fs::remove(SegmentPath(sealed_seqs_.front(), true), ec);
    sealed_seqs_.erase(sealed_seqs_.begin());
    segments_deleted_.fetch_add(1, std::memory_order_relaxed);
  }
  ++active_seq_;
  return StartSegment();
}

Status FeedbackLog::AppendBody(const std::vector<uint8_t>& body,
                               bool is_click) {
  const uint64_t framed = 8 + body.size();
  if (active_records_ > 0 &&
      active_bytes_ + framed > options_.max_segment_bytes) {
    SQP_RETURN_IF_ERROR(SealLocked());
  }
  uint8_t trailer[8];
  StoreLE32(trailer, static_cast<uint32_t>(body.size()));
  StoreLE32(trailer + 4, Crc32(body.data(), body.size()));
  out_.write(reinterpret_cast<const char*>(trailer), 4);
  out_.write(reinterpret_cast<const char*>(body.data()),
             static_cast<std::streamsize>(body.size()));
  out_.write(reinterpret_cast<const char*>(trailer + 4), 4);
  out_.flush();
  if (!out_) {
    dropped_appends_.fetch_add(1, std::memory_order_relaxed);
    out_.clear();
    return Status::IOError("feedback append failed (record dropped)");
  }
  active_bytes_ += framed;
  ++active_records_;
  (is_click ? clicks_appended_ : impressions_appended_)
      .fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FeedbackLog::AppendImpression(const FeedbackRecord& record) {
  if (record.record_id == 0) {
    return Status::InvalidArgument("impression record_id must be > 0");
  }
  const std::vector<uint8_t> body = EncodeImpressionBody(record);
  std::lock_guard<std::mutex> lock(io_mu_);
  return AppendBody(body, /*is_click=*/false);
}

Status FeedbackLog::RecordClick(uint64_t impression_record_id,
                                uint32_t position) {
  if (impression_record_id == 0) {
    return Status::InvalidArgument("click impression_record_id must be > 0");
  }
  const std::vector<uint8_t> body =
      EncodeClickBody(impression_record_id, position);
  std::lock_guard<std::mutex> lock(io_mu_);
  return AppendBody(body, /*is_click=*/true);
}

Status FeedbackLog::Seal() {
  std::lock_guard<std::mutex> lock(io_mu_);
  return SealLocked();
}

Status FeedbackLog::Flush() {
  std::lock_guard<std::mutex> lock(io_mu_);
  out_.flush();
  if (!out_) {
    out_.clear();
    return Status::IOError("feedback flush failed");
  }
  return Status::OK();
}

FeedbackLogStats FeedbackLog::stats() const {
  FeedbackLogStats s;
  s.impressions_appended = impressions_appended_.load(std::memory_order_relaxed);
  s.clicks_appended = clicks_appended_.load(std::memory_order_relaxed);
  s.dropped_appends = dropped_appends_.load(std::memory_order_relaxed);
  s.segments_sealed = segments_sealed_.load(std::memory_order_relaxed);
  s.segments_deleted = segments_deleted_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    s.active_segment_bytes = active_bytes_;
  }
  return s;
}

Result<std::vector<FeedbackRecord>> ReadFeedbackLog(const std::string& dir,
                                                    FeedbackReadReport* report) {
  FeedbackReadReport local;
  FeedbackReadReport* rep = report ? report : &local;
  *rep = FeedbackReadReport{};

  std::vector<FeedbackRecord> records;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return records;

  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t seq = 0;
    bool sealed = false;
    if (!ParseSegmentName(entry.path().filename().string(), &seq, &sealed)) {
      continue;
    }
    segments.emplace_back(seq, entry.path().string());
  }
  if (ec) {
    return Status::IOError("cannot list feedback dir " + dir + ": " +
                           ec.message());
  }
  std::sort(segments.begin(), segments.end());

  std::vector<ClickEvent> clicks;
  for (const auto& [seq, path] : segments) {
    SegmentScan scan = ScanSegment(path);
    rep->torn_records += scan.torn_records;
    rep->impressions += scan.impressions.size();
    rep->clicks += scan.clicks.size();
    for (FeedbackRecord& record : scan.impressions) {
      records.push_back(std::move(record));
    }
    clicks.insert(clicks.end(), scan.clicks.begin(), scan.clicks.end());
  }

  std::sort(records.begin(), records.end(),
            [](const FeedbackRecord& a, const FeedbackRecord& b) {
              return a.record_id < b.record_id;
            });

  std::unordered_map<uint64_t, size_t> by_id;
  by_id.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    by_id.emplace(records[i].record_id, i);
  }
  for (const ClickEvent& click : clicks) {
    auto it = by_id.find(click.impression_record_id);
    if (it == by_id.end()) {
      ++rep->unmatched_clicks;
      continue;
    }
    // First click wins: duplicates (retries, replays) don't move it.
    if (records[it->second].clicked_position == kFeedbackNoClick) {
      records[it->second].clicked_position = click.position;
    }
  }
  return records;
}

std::vector<AggregatedSession> SessionsFromFeedback(
    std::span<const FeedbackRecord> records) {
  std::vector<AggregatedSession> sessions;
  for (const FeedbackRecord& record : records) {
    if (record.clicked_position == kFeedbackNoClick) continue;
    if (record.clicked_position >= record.served.size()) continue;
    if (record.context.empty()) continue;
    const QueryId clicked = record.served[record.clicked_position].query;
    if (clicked == kInvalidQueryId) continue;
    AggregatedSession session;
    session.queries = record.context;
    session.queries.push_back(clicked);
    session.frequency = 1;
    sessions.push_back(std::move(session));
  }
  return sessions;
}

uint64_t FeedbackHook::OnServed(std::span<const QueryId> context,
                                uint64_t served_version,
                                Recommendation* rec) const {
  if (rec == nullptr || !rec->covered || rec->queries.empty()) return 0;
  const bool exploring = explorer != nullptr && explorer->enabled();
  if (log == nullptr && !exploring) return 0;

  const uint64_t record_id =
      log != nullptr ? log->NextRecordId()
                     : unlogged_id_.fetch_add(1, std::memory_order_relaxed);

  std::vector<double> propensities;
  if (explorer != nullptr) {
    explorer->Rerank(record_id, &rec->queries, &propensities);
  } else {
    propensities.assign(rec->queries.size(), 0.0);
    propensities[0] = 1.0;
  }

  if (log == nullptr) return 0;

  FeedbackRecord record;
  record.record_id = record_id;
  record.snapshot_version = served_version;
  record.policy =
      explorer != nullptr ? explorer->options().policy : ExplorePolicy::kNone;
  record.policy_param = explorer != nullptr ? explorer->options().param : 0.0;
  record.context.assign(context.begin(), context.end());
  record.served.resize(rec->queries.size());
  for (size_t i = 0; i < rec->queries.size(); ++i) {
    record.served[i].query = rec->queries[i].query;
    record.served[i].score = rec->queries[i].score;
    record.served[i].propensity = propensities[i];
  }
  // Serving never fails on a log error: the drop is counted in stats().
  (void)log->AppendImpression(record);
  return record_id;
}

}  // namespace sqp
