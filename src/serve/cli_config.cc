#include "serve/cli_config.h"

#include <cstdlib>

#include "serve/explorer.h"

namespace sqp {
namespace {

Status ParseCount(const std::string& flag, const std::string& text,
                  size_t max_value, size_t* out) {
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 1 ||
      static_cast<unsigned long>(value) > max_value) {
    return Status::InvalidArgument(
        flag + " expects an integer in [1, " + std::to_string(max_value) +
        "], got '" + text + "'");
  }
  *out = static_cast<size_t>(value);
  return Status::OK();
}

}  // namespace

Result<RecommenderCliConfig> ParseRecommenderCliArgs(
    std::span<const std::string> args) {
  RecommenderCliConfig config;
  bool shards_given = false;
  bool batch_given = false;
  bool threads_given = false;
  bool deadline_given = false;
  bool lane_given = false;
  bool connect_given = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value_of = [&](const std::string& flag,
                              std::string* out) -> Status {
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument(flag + " expects a value");
      }
      *out = args[++i];
      return Status::OK();
    };
    std::string value;
    if (arg == "--tail") {
      config.tail = true;
    } else if (arg == "--compact") {
      config.compact = true;
    } else if (arg == "--threads") {
      SQP_RETURN_IF_ERROR(value_of(arg, &value));
      SQP_RETURN_IF_ERROR(ParseCount(arg, value, 64, &config.threads));
      threads_given = true;
    } else if (arg == "--batch") {
      SQP_RETURN_IF_ERROR(value_of(arg, &value));
      SQP_RETURN_IF_ERROR(ParseCount(arg, value, 1 << 16, &config.batch));
      batch_given = true;
    } else if (arg == "--shards") {
      SQP_RETURN_IF_ERROR(value_of(arg, &value));
      SQP_RETURN_IF_ERROR(ParseCount(arg, value, 4096, &config.shards));
      shards_given = true;
    } else if (arg == "--save-snapshot") {
      SQP_RETURN_IF_ERROR(value_of(arg, &config.save_snapshot));
      if (config.save_snapshot.empty()) {
        return Status::InvalidArgument("--save-snapshot expects a path");
      }
    } else if (arg == "--load-snapshot") {
      SQP_RETURN_IF_ERROR(value_of(arg, &config.load_snapshot));
      if (config.load_snapshot.empty()) {
        return Status::InvalidArgument("--load-snapshot expects a path");
      }
    } else if (arg == "--deadline-us") {
      SQP_RETURN_IF_ERROR(value_of(arg, &value));
      size_t deadline = 0;
      // Cap at 1e9 us (1000 s): anything longer is indistinguishable
      // from unbounded, which plain serving (deadline_us = 0) already is.
      SQP_RETURN_IF_ERROR(
          ParseCount(arg, value, 1000000000, &deadline));
      config.deadline_us = deadline;
      deadline_given = true;
    } else if (arg == "--serve-port") {
      SQP_RETURN_IF_ERROR(value_of(arg, &value));
      size_t port = 0;
      SQP_RETURN_IF_ERROR(ParseCount(arg, value, 65535, &port));
      config.serve_port = static_cast<uint16_t>(port);
    } else if (arg == "--connect") {
      SQP_RETURN_IF_ERROR(value_of(arg, &value));
      const size_t colon = value.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == value.size()) {
        return Status::InvalidArgument(
            "--connect expects HOST:PORT, got '" + value + "'");
      }
      size_t port = 0;
      SQP_RETURN_IF_ERROR(
          ParseCount(arg, value.substr(colon + 1), 65535, &port));
      config.connect_host = value.substr(0, colon);
      config.connect_port = static_cast<uint16_t>(port);
      connect_given = true;
    } else if (arg == "--feedback-log") {
      SQP_RETURN_IF_ERROR(value_of(arg, &config.feedback_log));
      if (config.feedback_log.empty()) {
        return Status::InvalidArgument("--feedback-log expects a directory");
      }
    } else if (arg == "--explore") {
      SQP_RETURN_IF_ERROR(value_of(arg, &config.explore));
      if (config.explore.empty()) {
        return Status::InvalidArgument(
            "--explore expects POLICY:PARAM (epsilon:E, softmax:L, bag:B) "
            "or none");
      }
    } else if (arg == "--lane") {
      SQP_RETURN_IF_ERROR(value_of(arg, &value));
      if (value == "interactive") {
        config.lane = QosLane::kInteractive;
      } else if (value == "bulk") {
        config.lane = QosLane::kBulk;
      } else {
        return Status::InvalidArgument(
            "--lane expects 'interactive' or 'bulk', got '" + value + "'");
      }
      lane_given = true;
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }

  // A cold-booted replica serves a persisted artifact verbatim; flags
  // that only affect training would be silently ignored — reject them
  // loudly instead.
  if (!config.load_snapshot.empty()) {
    if (config.tail) {
      return Status::InvalidArgument(
          "--load-snapshot is incompatible with --tail: a cold-booted "
          "replica has no training corpus to retrain");
    }
    if (!config.save_snapshot.empty()) {
      return Status::InvalidArgument(
          "--load-snapshot is incompatible with --save-snapshot: a "
          "cold-booted replica never rebuilds, so there is nothing new to "
          "persist");
    }
    if (config.compact) {
      return Status::InvalidArgument(
          "--compact is ignored with --load-snapshot: a persisted blob "
          "already is the compact serving layout");
    }
    if (shards_given) {
      return Status::InvalidArgument(
          "--shards is ignored with --load-snapshot: the shard count "
          "comes from the snapshot manifest");
    }
  }

  // The network tier: both modes resolve the fleet shape and the
  // dictionary off a persisted artifact, so they require --load-snapshot;
  // flags the chosen mode would silently ignore are rejected loudly.
  if (config.serve_port != 0 && connect_given) {
    return Status::InvalidArgument(
        "--serve-port and --connect are mutually exclusive: a process is "
        "either a shard server or a routing client");
  }
  if (config.serve_port != 0) {
    if (config.load_snapshot.empty()) {
      return Status::InvalidArgument(
          "--serve-port requires --load-snapshot: a shard server "
          "cold-boots the fleet artifact it serves");
    }
    if (batch_given || deadline_given || lane_given) {
      return Status::InvalidArgument(
          std::string(batch_given ? "--batch"
                      : deadline_given ? "--deadline-us"
                                       : "--lane") +
          " is ignored with --serve-port: a shard server has no stdin "
          "loop; batching and QoS travel per-request from the connecting "
          "router");
    }
  }
  // Closed-loop serving flags: exploration without a feedback log would
  // perturb traffic while throwing away the propensities that make the
  // perturbed log evaluatable; a routing client never serves, so it has
  // nothing truthful to log.
  if (!config.explore.empty() && config.feedback_log.empty()) {
    return Status::InvalidArgument(
        "--explore requires --feedback-log: exploration must log sampling "
        "propensities or the perturbed traffic cannot be evaluated");
  }
  if (!config.explore.empty()) {
    // Reject malformed specs at parse time, not at first served request.
    const Result<ExplorerOptions> parsed = ParseExplorerSpec(config.explore);
    if (!parsed.ok()) return parsed.status();
  }
  if (connect_given && !config.feedback_log.empty()) {
    return Status::InvalidArgument(
        "--feedback-log is ignored with --connect: feedback is logged by "
        "the serving process (start the fleet's --serve-port side with it)");
  }

  if (connect_given) {
    if (config.load_snapshot.empty()) {
      return Status::InvalidArgument(
          "--connect requires --load-snapshot: the client resolves the "
          "shard count and the dictionary off the fleet artifact");
    }
    if (threads_given) {
      return Status::InvalidArgument(
          "--threads is ignored with --connect: the router is a "
          "single-connection client; engine lanes belong to the serving "
          "side");
    }
  }
  return config;
}

}  // namespace sqp
