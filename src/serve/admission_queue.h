#ifndef SQP_SERVE_ADMISSION_QUEUE_H_
#define SQP_SERVE_ADMISSION_QUEUE_H_

/// Bounded two-lane admission control for the batch execution slot.
///
/// Both engines fan batches out on a WorkerPool that runs one job at a
/// time; before this queue existed, concurrent batch callers serialized on
/// a bare mutex — an unbounded convoy with no fairness, no deadline
/// awareness, and no way to tell the system was drowning. The admission
/// queue replaces that mutex with an explicit waiting room:
///
///  - Two priority lanes. A waiting interactive job is always granted the
///    slot before any waiting bulk job, whatever the arrival order; within
///    a lane grants are FIFO (so equal-priority callers all make
///    progress and a small batch is never starved behind a large one
///    that arrived later).
///  - Shed on arrival: a deadline-carrying job whose projected completion
///    (items ahead of it + its own items, times the EWMA per-item service
///    time) already overruns its deadline is refused immediately —
///    failing fast beats queueing work that is already dead.
///  - Shed on overflow: each lane bounds its waiting-job count; a
///    deadline-carrying job arriving at a full lane is refused with
///    kResourceExhausted instead of deepening the convoy.
///  - Expiry in queue: a job whose deadline passes while it waits is
///    dequeued and refused; it never occupies the slot.
///  - Degrade before shed: under queue pressure, deadline-carrying
///    requests are offered a reduced top_n (DegradedTopN) so the fleet
///    sheds quality before it sheds requests.
///
/// Jobs with an unbounded deadline (every call through the deadline-free
/// legacy API) are exempt from all shedding: they wait however long the
/// backlog takes, exactly as the old mutex behaved — which is what keeps
/// the deadline-aware paths bit-identical to the legacy paths when there
/// is no overload.
///
/// The queue also owns the per-lane QoS counters and latency histograms
/// (inline fast paths that never contend for the slot report through
/// RecordServed / CountShed), so EngineStats can surface one coherent
/// admitted/shed/expired/degraded story.
///
/// Thread-safety: all methods are safe from any number of threads.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "serve/deadline.h"
#include "util/status.h"

namespace sqp {

/// Latency histogram resolution: bucket b counts requests whose
/// end-to-end latency was in [2^(b-1), 2^b) microseconds (bucket 0:
/// < 1us; the last bucket absorbs everything slower than ~0.5s).
inline constexpr size_t kLatencyBuckets = 20;

/// Returns the histogram bucket for a latency in microseconds.
size_t LatencyBucket(double latency_us);

struct AdmissionOptions {
  /// Maximum waiting jobs per lane; a deadline-carrying job arriving at a
  /// full lane is shed with kResourceExhausted. Unbounded-deadline jobs
  /// are never shed and may exceed the bound (they inherit the legacy
  /// blocking contract).
  size_t interactive_capacity = 64;
  size_t bulk_capacity = 16;

  /// Smoothing factor for the per-item service-time EWMA that drives
  /// shed-on-arrival (higher = adapts faster, noisier).
  double ewma_alpha = 0.2;

  /// Seed for the EWMA before the first job completes. Deliberately
  /// small: the queue starts permissive and tightens as it observes real
  /// service times.
  double initial_service_us_per_item = 0.5;

  /// Degrade ladder: when the total waiting-job count reaches this
  /// fraction of total capacity, deadline-carrying requests are served
  /// with a halved top_n (floored at degrade_min_top_n) instead of being
  /// shed. Set >= 1.0 to disable degradation.
  double degrade_pressure = 0.5;
  size_t degrade_min_top_n = 3;
};

/// Monotonic per-lane QoS counters (a plain snapshot copy; see
/// AdmissionQueue::stats()).
struct LaneCounters {
  uint64_t admitted = 0;         // requests that ran (fully or partially)
  uint64_t shed_queue_full = 0;  // refused: lane at capacity
  uint64_t shed_deadline = 0;    // refused: deadline unmeetable on arrival
  uint64_t expired_in_queue = 0; // refused: deadline passed while waiting
  uint64_t expired_items = 0;    // batch items cut by mid-batch checks
  uint64_t degraded = 0;         // requests served with reduced top_n
  std::array<uint64_t, kLatencyBuckets> latency_hist{};

  uint64_t shed_total() const {
    return shed_queue_full + shed_deadline + expired_in_queue;
  }

  void MergeFrom(const LaneCounters& other);
};

struct AdmissionStats {
  std::array<LaneCounters, kNumQosLanes> lanes;

  /// Current per-item service-time estimate in microseconds.
  double ewma_service_us_per_item = 0.0;

  const LaneCounters& lane(QosLane l) const {
    return lanes[static_cast<size_t>(l)];
  }

  /// Sums counters lane-wise (for fleet-level aggregation); the EWMA
  /// keeps this object's value.
  void MergeFrom(const AdmissionStats& other);
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionOptions options = {});

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Requests the execution slot for a job of `num_items`. Returns OK once
  /// the caller owns the slot (it MUST then call Release exactly once), or
  /// a shed decision: DeadlineExceeded (unmeetable on arrival, or expired
  /// while waiting) / ResourceExhausted (lane full). Shed outcomes are
  /// counted internally; admitted outcomes are counted by the paired
  /// RecordServed.
  Status Admit(QosLane lane, const Deadline& deadline, size_t num_items);

  /// Releases the slot. `items_served` / `service_us` (the slot-held
  /// wall time) feed the EWMA estimator; pass items_served = 0 when the
  /// whole job expired to leave the estimate untouched.
  void Release(size_t items_served, double service_us);

  /// The degrade ladder: the top_n to actually serve for a request with
  /// this deadline. Unbounded-deadline requests always get the full
  /// top_n; bounded ones get a halved top_n under queue pressure.
  size_t DegradedTopN(size_t top_n, const Deadline& deadline) const;

  /// Records a completed request in the lane counters and latency
  /// histogram. Used by every serving path, including inline ones that
  /// never called Admit.
  void RecordServed(QosLane lane, double latency_us, bool degraded,
                    size_t expired_items);

  /// Records a shed that happened outside Admit (e.g. an inline path
  /// observing an already-expired deadline). `code` must be
  /// kDeadlineExceeded or kResourceExhausted.
  void CountShed(QosLane lane, StatusCode code);

  /// Jobs currently waiting in one lane (diagnostic; racy by nature).
  size_t waiting_jobs(QosLane lane) const;

  AdmissionStats stats() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  struct Waiter {
    size_t items = 0;
    bool granted = false;
  };

  /// Grants the slot to the highest-priority waiter if it is free.
  /// mu_ must be held.
  void MaybeGrantLocked();

  size_t capacity(QosLane lane) const {
    return lane == QosLane::kInteractive ? options_.interactive_capacity
                                         : options_.bulk_capacity;
  }

  /// Items that would be served before a new arrival on `lane` gets the
  /// slot. mu_ must be held.
  double ItemsAheadLocked(QosLane lane) const;

  AdmissionOptions options_;
  size_t degrade_threshold_jobs_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::array<std::deque<Waiter*>, kNumQosLanes> waiting_;
  std::array<size_t, kNumQosLanes> waiting_items_{};
  bool busy_ = false;
  size_t running_items_ = 0;
  double ewma_us_per_item_;  // guarded by mu_

  /// Lock-free mirror of the total waiting-job count so the inline
  /// serving paths can read degrade pressure without touching mu_.
  std::atomic<size_t> waiting_jobs_total_{0};

  /// Counters are relaxed atomics: they are bumped from paths that must
  /// not contend on mu_ (inline serving) and only ever read as
  /// monotonic approximations.
  struct AtomicLane {
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> shed_queue_full{0};
    std::atomic<uint64_t> shed_deadline{0};
    std::atomic<uint64_t> expired_in_queue{0};
    std::atomic<uint64_t> expired_items{0};
    std::atomic<uint64_t> degraded{0};
    std::array<std::atomic<uint64_t>, kLatencyBuckets> latency_hist{};
  };
  mutable std::array<AtomicLane, kNumQosLanes> counters_;
};

}  // namespace sqp

#endif  // SQP_SERVE_ADMISSION_QUEUE_H_
