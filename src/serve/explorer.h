#ifndef SQP_SERVE_EXPLORER_H_
#define SQP_SERVE_EXPLORER_H_

/// Closed-loop serving, part 2: the exploration-aware reranker. A pure
/// greedy ranker only ever shows the model's current best guess, so its
/// feedback log can never teach it that a lower-ranked query would have
/// been clicked more — the classic bandit feedback problem. The Explorer
/// perturbs served top-N lists with the policy set of Vowpal Wabbit's
/// `vw_predict_exploration` (epsilon-greedy / softmax / bag), sampling
/// which item is promoted to slot 1, and reports the probability each
/// item had of winning that slot (the sampling propensity) so logged
/// clicks can be propensity-reweighted into unbiased estimates
/// (eval/ips.h).
///
/// Determinism contract: reranking is a pure function of (options.seed,
/// record_id, the served list). Two replicas with the same seed serve
/// identical explored lists for the same record id, and a logged stream
/// can be replayed bit-exactly. No shared mutable state — Rerank is
/// const and thread-safe.
///
/// Identity contract (the invariant bench/closed_loop enforces): with
/// policy none, or epsilon-greedy at epsilon == 0, Rerank never touches
/// the list — same order, same score bits — and reports propensity 1 for
/// slot 1, 0 elsewhere. Exploration is strictly opt-in.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/prediction_model.h"
#include "serve/feedback.h"
#include "util/status.h"

namespace sqp {

struct ExplorerOptions {
  ExplorePolicy policy = ExplorePolicy::kNone;
  /// Policy parameter: epsilon in [0,1] for kEpsilonGreedy, lambda >= 0
  /// for kSoftmax (0 degenerates to uniform), bag count in [1,64] for
  /// kBag. Ignored for kNone.
  double param = 0.0;
  /// Deterministic base seed; combined with each record id.
  uint64_t seed = 0;
};

/// Parses the CLI spelling "POLICY:PARAM" — "epsilon:0.1", "softmax:8",
/// "bag:4" — or "none". Returns InvalidArgument on unknown policies and
/// OutOfRange on parameters outside the documented domain.
Result<ExplorerOptions> ParseExplorerSpec(const std::string& spec,
                                          uint64_t seed = 0);

class Explorer {
 public:
  explicit Explorer(ExplorerOptions options);

  const ExplorerOptions& options() const { return options_; }

  /// False when the policy cannot change any served list (kNone, or
  /// epsilon-greedy with epsilon == 0) — callers may skip Rerank
  /// entirely, which keeps the disabled path exactly the pre-explorer
  /// code path.
  bool enabled() const { return enabled_; }

  /// Computes the slot-1 pmf over `queries`, samples a winner with an Rng
  /// derived from (seed, record_id), and swaps the winner to the front
  /// (VW cb_sample semantics: a swap, not a resort — every item keeps the
  /// score the model gave it, bit for bit). On return propensities[i] is
  /// the pmf mass of the item that now sits at slot i; it always sums to
  /// 1 over the list. Empty lists are left untouched with empty
  /// propensities. When disabled, the list is untouched and the
  /// propensities are the greedy point mass [1, 0, ...].
  void Rerank(uint64_t record_id, std::vector<ScoredQuery>* queries,
              std::vector<double>* propensities) const;

  /// The slot-1 pmf alone (no sampling, no mutation): propensities[i] is
  /// the chance item i of `queries` wins slot 1. Exposed for tests and
  /// offline analysis.
  void SlotOnePmf(std::span<const ScoredQuery> queries,
                  std::vector<double>* pmf) const;

 private:
  ExplorerOptions options_;
  bool enabled_ = false;
};

}  // namespace sqp

#endif  // SQP_SERVE_EXPLORER_H_
