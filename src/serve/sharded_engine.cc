#include "serve/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>
#include <unordered_map>

#include "core/pst.h"
#include "serve/feedback.h"
#include "util/timer.h"

namespace sqp {
namespace {

size_t ResolvePoolThreads(size_t requested) {
  if (requested != 0) return std::clamp<size_t>(requested, 1, 64);
  const size_t hw = std::thread::hardware_concurrency();
  return std::clamp<size_t>(hw == 0 ? 1 : hw, 1, 16);
}

/// The global root state of the undivided corpus: the prior over next
/// queries that Pst::BuildImpl derives from the depth-1 entries, which
/// algebraically equals the weighted occurrence count of every query
/// across sessions with >= 2 queries. Per-shard roots pool only the
/// shard's corpus slice, so the routed sigma fit below must consult this
/// reconstruction whenever a component matches at depth 0. parent stays
/// -1 so EscapeMass takes the same (count-independent) root branch as on
/// the unsharded tree.
Pst::Node GlobalRootState(const std::vector<AggregatedSession>& corpus) {
  std::unordered_map<QueryId, uint64_t> prior;
  for (const AggregatedSession& session : corpus) {
    if (session.queries.size() < 2) continue;  // counting skips these too
    for (const QueryId q : session.queries) {
      prior[q] += session.frequency;
    }
  }
  Pst::Node root;
  root.nexts.reserve(prior.size());
  for (const auto& [query, count] : prior) {
    root.nexts.push_back(NextQueryCount{query, count});
    root.total_count += count;
  }
  std::sort(root.nexts.begin(), root.nexts.end(),
            [](const NextQueryCount& a, const NextQueryCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.query < b.query;
            });
  return root;
}

/// ModelSnapshot::BuildWeightSample with the tree walk routed to the
/// owning shard per prefix: every matched state of prefix [q1..qi] lives
/// in shard(q_{i-1})'s tree (bit-identical to the unsharded tree there),
/// and depth-0 matches read the reconstructed global root. Keeping the
/// arithmetic order identical to the unsharded path makes the fitted
/// sigmas — and with them every served score — exactly equal.
void BuildWeightSampleSharded(
    std::span<const std::shared_ptr<const ModelSnapshot>> shards,
    const Pst::Node& global_root, const MvmmOptions& options,
    size_t vocabulary_size, const AggregatedSession& session,
    internal::WeightSample* sample) {
  const size_t k = options.components.size();
  const std::vector<QueryId>& q = session.queries;
  sample->edit_distance.resize(k);
  sample->sequence_prob.assign(k, 1.0);

  thread_local std::vector<int32_t> path;
  thread_local std::vector<size_t> matched;
  thread_local std::vector<double> cond_at;

  const uint32_t num_shards = static_cast<uint32_t>(shards.size());
  for (size_t i = 1; i < q.size(); ++i) {
    const std::span<const QueryId> prefix(q.data(), i);
    const ModelSnapshot& owner =
        *shards[ShardOfContext(prefix, num_shards)];
    const size_t depth = owner.SharedMatchDepths(prefix, &path, &matched);
    const std::vector<Pst::Node>& nodes = owner.pst()->nodes();
    cond_at.assign(depth + 1, -1.0);
    for (size_t c = 0; c < k; ++c) {
      const size_t m = matched[c];
      const Pst::Node& state =
          m == 0 ? global_root : nodes[static_cast<size_t>(path[m - 1])];
      if (cond_at[m] < 0.0) {
        cond_at[m] = internal::SmoothedProb(state.nexts, state.total_count,
                                            vocabulary_size, q[i]);
      }
      const size_t dropped = i - m;
      const double escape =
          dropped == 0 ? 1.0
                       : internal::EscapeMass(
                             state, dropped,
                             options.components[c].default_escape);
      sample->sequence_prob[c] *= escape * cond_at[m];
    }
    if (i + 1 == q.size()) {  // prefix == full context
      for (size_t c = 0; c < k; ++c) {
        sample->edit_distance[c] = static_cast<double>(i - matched[c]);
      }
    }
  }
}

std::vector<double> FitShardedSigmas(
    const std::vector<AggregatedSession>& corpus,
    std::span<const std::shared_ptr<const ModelSnapshot>> shards,
    const MvmmOptions& options, size_t vocabulary_size) {
  std::vector<double> sigmas(options.components.size(),
                             options.initial_sigma);
  const std::vector<const AggregatedSession*> pool =
      internal::SelectWeightPool(corpus, options.weight_sample_size);
  if (pool.empty()) return sigmas;

  const Pst::Node global_root = GlobalRootState(corpus);
  std::vector<internal::WeightSample> samples(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    samples[i].weight = static_cast<double>(pool[i]->frequency);
  }
  // Per-sample evaluation is independent and writes only its own slot, so
  // sharding it across workers leaves the result bit-identical — the same
  // argument as the unsharded FitSigmas pass.
  if (options.training_threads > 1 && samples.size() > 1) {
    std::vector<std::thread> workers;
    const size_t num_workers =
        std::min(options.training_threads, samples.size());
    std::atomic<size_t> next{0};
    for (size_t w = 0; w < num_workers; ++w) {
      workers.emplace_back([&] {
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= samples.size()) return;
          BuildWeightSampleSharded(shards, global_root, options,
                                   vocabulary_size, *pool[i], &samples[i]);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  } else {
    for (size_t i = 0; i < samples.size(); ++i) {
      BuildWeightSampleSharded(shards, global_root, options,
                               vocabulary_size, *pool[i], &samples[i]);
    }
  }
  internal::FitSigmasFromSamples(&samples, options, &sigmas);
  return sigmas;
}

}  // namespace

// ----------------------------------------------------------------- engine

ShardedEngine::ShardedEngine(ShardedEngineOptions options)
    : options_(options),
      pool_(ResolvePoolThreads(options.num_threads)),
      admission_(options.admission) {
  const size_t shards = std::clamp<size_t>(options.num_shards, 1, 4096);
  shards_.reserve(shards);
  EngineOptions shard_options;
  shard_options.num_threads = 1;
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<RecommenderEngine>(shard_options));
  }
  lane_scratch_.resize(pool_.num_lanes());
}

Status ShardedEngine::LoadAndPublish(const std::string& manifest_path,
                                     const SnapshotLoadOptions& options) {
  Result<SnapshotManifest> manifest = SnapshotIo::LoadManifest(manifest_path);
  if (!manifest.ok()) return manifest.status();
  if (manifest->num_shards() != shards_.size()) {
    return Status::InvalidArgument(
        "manifest has " + std::to_string(manifest->num_shards()) +
        " shards but the engine has " + std::to_string(shards_.size()) +
        ": " + manifest_path);
  }
  if (manifest->partition_function != kShardPartitionLastQueryFnv1a) {
    return Status::InvalidArgument(
        "manifest partition function " +
        std::to_string(manifest->partition_function) +
        " is not the last-query FNV-1a scheme this build routes with: " +
        manifest_path);
  }
  // Stage everything before publishing anything: a fleet boot is all or
  // nothing, and a failure leaves the current snapshots serving.
  std::vector<std::shared_ptr<const MappedCompactSnapshot>> staged;
  staged.reserve(shards_.size());
  for (const ShardBlobRef& ref : manifest->shards) {
    const std::string blob_path =
        ResolveAgainstManifest(manifest_path, ref.path);
    SQP_RETURN_IF_ERROR(SnapshotIo::VerifyBlobRef(ref, blob_path));
    Result<std::shared_ptr<const MappedCompactSnapshot>> mapped =
        SnapshotIo::Map(blob_path, options);
    if (!mapped.ok()) return mapped.status();
    staged.push_back(std::move(mapped.value()));
  }
  for (size_t s = 0; s < staged.size(); ++s) {
    shards_[s]->Publish(std::move(staged[s]));
  }
  return Status::OK();
}

Result<FleetBootReport> ShardedEngine::LoadAndPublishAvailable(
    const std::string& manifest_path, const SnapshotLoadOptions& options) {
  Result<SnapshotManifest> manifest = SnapshotIo::LoadManifest(manifest_path);
  if (!manifest.ok()) return manifest.status();
  if (manifest->num_shards() != shards_.size()) {
    return Status::InvalidArgument(
        "manifest has " + std::to_string(manifest->num_shards()) +
        " shards but the engine has " + std::to_string(shards_.size()) +
        ": " + manifest_path);
  }
  if (manifest->partition_function != kShardPartitionLastQueryFnv1a) {
    return Status::InvalidArgument(
        "manifest partition function " +
        std::to_string(manifest->partition_function) +
        " is not the last-query FNV-1a scheme this build routes with: " +
        manifest_path);
  }
  FleetBootReport report;
  report.shard_status.reserve(shards_.size());
  for (size_t s = 0; s < manifest->shards.size(); ++s) {
    const ShardBlobRef& ref = manifest->shards[s];
    const std::string blob_path =
        ResolveAgainstManifest(manifest_path, ref.path);
    Status status = SnapshotIo::VerifyBlobRef(ref, blob_path);
    if (status.ok()) {
      Result<std::shared_ptr<const MappedCompactSnapshot>> mapped =
          SnapshotIo::Map(blob_path, options);
      if (mapped.ok()) {
        shards_[s]->Publish(std::move(mapped.value()));
        ++report.healthy_shards;
      } else {
        status = mapped.status();
      }
    }
    report.shard_status.push_back(std::move(status));
  }
  if (report.healthy_shards == 0) {
    for (const Status& status : report.shard_status) {
      if (!status.ok()) return status;
    }
  }
  return report;
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::BootFromManifest(
    const std::string& manifest_path, ShardedEngineOptions base,
    const SnapshotLoadOptions& load_options) {
  Result<SnapshotManifest> manifest = SnapshotIo::LoadManifest(manifest_path);
  if (!manifest.ok()) return manifest.status();
  base.num_shards = manifest->num_shards();
  auto engine = std::make_unique<ShardedEngine>(base);
  SQP_RETURN_IF_ERROR(engine->LoadAndPublish(manifest_path, load_options));
  return Result<std::unique_ptr<ShardedEngine>>(std::move(engine));
}

ServeResult ShardedEngine::Recommend(ContextRef context, size_t top_n,
                                     const ServeOptions& options) const {
  // The owning shard's engine handles the deadline check, degrade and
  // QoS accounting; its counters roll up through stats().
  return shards_[OwningShard(context)]->Recommend(context, top_n, options);
}

BatchResult ShardedEngine::RecommendMany(
    std::span<const ContextRef> contexts, size_t top_n,
    const ServeOptions& options) const {
  const Deadline::Clock::time_point start = Deadline::Clock::now();
  const size_t n = contexts.size();
  BatchResult out;
  out.results.resize(n);
  out.statuses.assign(n, StatusCode::kOk);
  out.effective_top_n = top_n;

  batch_queries_.fetch_add(n, std::memory_order_relaxed);
  batches_served_.fetch_add(1, std::memory_order_relaxed);

  if (options.deadline.Expired(start)) {
    admission_.CountShed(options.lane, StatusCode::kDeadlineExceeded);
    out.admission = Status::DeadlineExceeded("deadline expired on arrival");
    std::fill(out.statuses.begin(), out.statuses.end(),
              StatusCode::kDeadlineExceeded);
    return out;
  }
  if (n == 0) return out;

  // One snapshot grab per shard for the whole batch: a swap landing
  // mid-batch cannot mix generations within a shard's answers.
  std::vector<std::shared_ptr<const ServingSnapshot>> snapshots(
      shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    snapshots[s] = shards_[s]->CurrentSnapshot();
  }

  const size_t effective_top_n =
      admission_.DegradedTopN(top_n, options.deadline);
  out.effective_top_n = effective_top_n;
  out.degraded = effective_top_n < top_n;
  size_t expired_items = 0;

  const auto answer = [&](size_t i, SnapshotScratch* scratch) {
    const ServingSnapshot* snapshot =
        snapshots[OwningShard(contexts[i])].get();
    if (snapshot != nullptr) {
      // First-touch pre-sizing per routed shard; Prepare only ever grows
      // capacities, so a scratch hopping between shards settles at the
      // fleet-wide maxima and the re-checks become no-ops.
      if (scratch->prepared_for != snapshot) {
        scratch->Prepare(snapshot->ScratchHint());
        scratch->prepared_for = snapshot;
      }
      out.results[i] =
          snapshot->Recommend(contexts[i], effective_top_n, scratch);
      if (options.feedback != nullptr) {
        options.feedback->OnServed(contexts[i], snapshot->version(),
                                   &out.results[i]);
      }
    } else {
      // Dead / never-published shard: uncovered-empty answer with an
      // explicit status — healthy shards keep serving around it.
      out.statuses[i] = StatusCode::kUnavailable;
    }
  };

  if (pool_.num_lanes() == 1 || n < options_.min_batch_fanout) {
    SnapshotScratch& scratch = internal::ThreadScratch();
    for (size_t i = 0; i < n; ++i) {
      if (options.deadline.bounded() && (i & 31u) == 0 && i != 0 &&
          options.deadline.Expired()) {
        for (size_t j = i; j < n; ++j) {
          out.statuses[j] = StatusCode::kDeadlineExceeded;
        }
        expired_items = n - i;
        break;
      }
      answer(i, &scratch);
    }
  } else {
    const Status admitted =
        admission_.Admit(options.lane, options.deadline, n);
    if (!admitted.ok()) {
      std::fill(out.statuses.begin(), out.statuses.end(), admitted.code());
      out.admission = admitted;
      return out;
    }
    std::atomic<bool> expired{false};
    const bool bounded = options.deadline.bounded();
    WallTimer service;
    pool_.Run(n, [&](size_t i, size_t lane) {
      if (bounded) {
        if (expired.load(std::memory_order_relaxed)) {
          out.statuses[i] = StatusCode::kDeadlineExceeded;
          return;
        }
        if ((i & 31u) == 0 && options.deadline.Expired()) {
          expired.store(true, std::memory_order_relaxed);
          out.statuses[i] = StatusCode::kDeadlineExceeded;
          return;
        }
      }
      answer(i, &lane_scratch_[lane]);
    });
    if (expired.load(std::memory_order_relaxed)) {
      for (const StatusCode code : out.statuses) {
        if (code == StatusCode::kDeadlineExceeded) ++expired_items;
      }
    }
    admission_.Release(n - expired_items, service.ElapsedSeconds() * 1e6);
  }

  for (const StatusCode code : out.statuses) {
    if (code == StatusCode::kOk) ++out.served;
  }
  const double latency_us =
      std::chrono::duration<double, std::micro>(Deadline::Clock::now() -
                                                start)
          .count();
  admission_.RecordServed(options.lane, latency_us, out.degraded,
                          expired_items);
  return out;
}

std::vector<uint64_t> ShardedEngine::shard_versions() const {
  std::vector<uint64_t> versions(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    versions[s] = shards_[s]->current_version();
  }
  return versions;
}

ShardedStats ShardedEngine::stats() const {
  ShardedStats stats;
  stats.shard_versions = shard_versions();
  stats.min_version = stats.shard_versions.empty()
                          ? 0
                          : *std::min_element(stats.shard_versions.begin(),
                                              stats.shard_versions.end());
  stats.max_version = stats.shard_versions.empty()
                          ? 0
                          : *std::max_element(stats.shard_versions.begin(),
                                              stats.shard_versions.end());
  stats.queries_served = batch_queries_.load(std::memory_order_relaxed);
  stats.admission = admission_.stats();
  for (const auto& shard : shards_) {
    const EngineStats shard_stats = shard->stats();
    stats.queries_served += shard_stats.queries_served;
    stats.admission.MergeFrom(shard_stats.admission);
  }
  stats.batches_served = batches_served_.load(std::memory_order_relaxed);
  return stats;
}

// --------------------------------------------------------------- training

Result<ShardedTrainResult> TrainShardedSnapshots(
    const std::vector<AggregatedSession>& corpus,
    const ShardedTrainOptions& options) {
  if (options.num_shards == 0 || options.num_shards > 4096) {
    return Status::InvalidArgument("num_shards must be in [1, 4096]");
  }
  MvmmOptions model = options.model;
  if (model.components.empty()) {
    model.components =
        MvmmOptions::DefaultComponents(model.default_max_depth);
  }
  const size_t k = model.components.size();
  if (!model.fixed_sigmas.empty() && model.fixed_sigmas.size() != k) {
    return Status::InvalidArgument(
        "fixed_sigmas must match the component count");
  }

  ShardedTrainResult result;
  result.vocabulary_size = options.vocabulary_size;
  if (result.vocabulary_size == 0) {
    QueryId max_id = 0;
    for (const AggregatedSession& session : corpus) {
      for (const QueryId q : session.queries) max_id = std::max(max_id, q);
    }
    result.vocabulary_size = static_cast<size_t>(max_id) + 1;
  }

  const bool needs_global_fit =
      model.weighting == MixtureWeighting::kGaussianEditDistance &&
      model.fixed_sigmas.empty();

  // Per-shard builds always run with pinned sigmas: either the caller's
  // vector, or a placeholder replaced by the global fit below. The
  // per-corpus Newton fit must never run per shard — that would weight
  // each shard by its own slice and break the exact-equality guarantee.
  MvmmOptions shard_model = model;
  if (needs_global_fit) {
    shard_model.fixed_sigmas.assign(k, model.initial_sigma);
  }

  result.corpora = PartitionSessionsByShard(corpus, options.num_shards);
  result.shards.reserve(options.num_shards);
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    TrainingData data;
    data.sessions = &result.corpora[s];
    data.vocabulary_size = result.vocabulary_size;
    Result<std::shared_ptr<const ModelSnapshot>> built =
        ModelSnapshot::Build(data, shard_model, options.version);
    if (!built.ok()) return built.status();
    result.shards.push_back(std::move(built.value()));
  }

  if (needs_global_fit) {
    result.sigmas = FitShardedSigmas(corpus, result.shards, model,
                                     result.vocabulary_size);
    for (auto& shard : result.shards) {
      Result<std::shared_ptr<const ModelSnapshot>> stamped =
          shard->WithSigmas(result.sigmas);
      if (!stamped.ok()) return stamped.status();
      shard = std::move(stamped.value());
    }
  } else {
    result.sigmas = result.shards.empty()
                        ? shard_model.fixed_sigmas
                        : result.shards.front()->sigmas();
  }
  return result;
}

Status WriteManifestForShardBlobs(const std::string& manifest_path,
                                  size_t num_shards, uint64_t version) {
  const std::string manifest_name =
      std::filesystem::path(manifest_path).filename().string();
  SnapshotManifest manifest;
  manifest.partition_function = kShardPartitionLastQueryFnv1a;
  manifest.version = version;
  manifest.shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    const std::string relative =
        manifest_name + ".shard" + std::to_string(s);
    Result<ShardBlobRef> ref = SnapshotIo::DescribeBlob(
        ResolveAgainstManifest(manifest_path, relative), relative);
    if (!ref.ok()) return ref.status();
    manifest.shards.push_back(std::move(ref.value()));
  }
  return SnapshotIo::SaveManifest(manifest, manifest_path);
}

Status SaveShardedSnapshots(
    std::span<const std::shared_ptr<const ModelSnapshot>> shards,
    const CompactOptions& compact, const std::string& manifest_path) {
  if (shards.empty()) {
    return Status::InvalidArgument("SaveShardedSnapshots needs shards");
  }
  const std::string manifest_name =
      std::filesystem::path(manifest_path).filename().string();
  for (size_t s = 0; s < shards.size(); ++s) {
    const std::string blob_path = ResolveAgainstManifest(
        manifest_path, manifest_name + ".shard" + std::to_string(s));
    const std::shared_ptr<const CompactSnapshot> packed =
        CompactSnapshot::FromSnapshot(*shards[s], compact);
    SQP_RETURN_IF_ERROR(SnapshotIo::Save(*packed, blob_path));
  }
  return WriteManifestForShardBlobs(manifest_path, shards.size(),
                                    shards.front()->version());
}

// -------------------------------------------------------------- retraining

ShardedRetrainerSet::ShardedRetrainerSet(ShardedEngine* engine,
                                         RetrainerOptions base)
    : engine_(engine), base_(std::move(base)) {
  SQP_CHECK(engine_ != nullptr);
  SQP_CHECK(!base_.after_persist);  // the set owns the persist hook
}

ShardedRetrainerSet::~ShardedRetrainerSet() { StopAll(); }

Status ShardedRetrainerSet::Bootstrap(std::vector<AggregatedSession> corpus) {
  if (!retrainers_.empty()) {
    return Status::FailedPrecondition(
        "ShardedRetrainerSet already bootstrapped");
  }
  // One global training pass builds every shard snapshot, pins the sigma
  // vector and the vocabulary bound; the per-shard retrainers are seeded
  // with the prebuilt snapshots (no second tree build) and every later
  // incremental rebuild reuses the fixed constants, staying
  // weight-consistent with the fleet.
  ShardedTrainOptions train;
  train.model = base_.model;
  train.num_shards = static_cast<uint32_t>(engine_->num_shards());
  train.vocabulary_size = base_.vocabulary_size;
  Result<ShardedTrainResult> trained =
      TrainShardedSnapshots(corpus, train);
  if (!trained.ok()) return trained.status();
  sigmas_ = trained->sigmas;

  retrainers_.reserve(engine_->num_shards());
  lazy_pending_.resize(engine_->num_shards());
  Status first_error;
  const auto note_error = [&first_error](const Status& status) {
    if (!status.ok() && first_error.ok()) first_error = status;
  };
  for (size_t s = 0; s < engine_->num_shards(); ++s) {
    RetrainerOptions options = base_;
    options.model.fixed_sigmas = sigmas_;
    // base_.vocabulary_size passes through untouched: 0 keeps the
    // caller's grow-with-interned-queries semantics for rebuilds (with
    // the sigmas pinned, |Q| no longer feeds any served score).
    if (!base_.persist_path.empty()) {
      options.persist_path = base_.persist_path + ".shard" +
                             std::to_string(s);
      options.after_persist = [this] {
        // Bootstrap writes the initial manifest itself once every blob
        // exists; after that, each shard persist re-pins it. Background
        // rebuilds have no caller to return the status to — it is
        // retained in last_manifest_status().
        if (refresh_enabled_.load(std::memory_order_acquire)) {
          (void)RefreshManifest();
        }
      };
    }
    retrainers_.push_back(
        std::make_unique<Retrainer>(engine_->shard(s), options));
    // An empty shard slice is legal for serving (the shard answers
    // uncovered, as the unsharded model would) but Retrainer requires a
    // non-empty bootstrap corpus: publish — and, with persistence,
    // persist — the trained (empty) snapshot directly; the retrainer
    // bootstraps lazily on the shard's first routed sessions.
    if (trained->corpora[s].empty()) {
      engine_->PublishShard(s, trained->shards[s]);
      if (!options.persist_path.empty()) {
        note_error(SnapshotIo::Save(
            *CompactSnapshot::FromSnapshot(*trained->shards[s],
                                           base_.compact),
            options.persist_path));
      }
      continue;
    }
    note_error(retrainers_.back()->Bootstrap(
        std::move(trained->corpora[s]), std::move(trained->shards[s])));
  }
  if (!base_.persist_path.empty() && first_error.ok()) {
    note_error(RefreshManifest());
  }
  refresh_enabled_.store(true, std::memory_order_release);
  return first_error;
}

Status ShardedRetrainerSet::RefreshManifest() const {
  if (base_.persist_path.empty()) return Status::OK();
  uint64_t version = 0;
  for (const auto& retrainer : retrainers_) {
    version = std::max(version, retrainer->published_version());
  }
  std::lock_guard<std::mutex> lock(manifest_mu_);
  manifest_status_ = WriteManifestForShardBlobs(base_.persist_path,
                                                retrainers_.size(), version);
  return manifest_status_;
}

Status ShardedRetrainerSet::last_manifest_status() const {
  std::lock_guard<std::mutex> lock(manifest_mu_);
  return manifest_status_;
}

Status ShardedRetrainerSet::LazyBootstrapShard(
    size_t s, std::vector<AggregatedSession> corpus) {
  const Status status = retrainers_[s]->Bootstrap(std::move(corpus));
  if (status.ok() && workers_started_) retrainers_[s]->Start();
  return status;
}

void ShardedRetrainerSet::AppendSessions(
    const std::vector<AggregatedSession>& sessions) {
  std::lock_guard<std::mutex> lock(append_mu_);
  const uint32_t num_shards = static_cast<uint32_t>(retrainers_.size());
  std::vector<std::vector<AggregatedSession>> routed(num_shards);
  for (const AggregatedSession& session : sessions) {
    OwningShards(session, num_shards, &owners_scratch_);
    for (const uint32_t shard : owners_scratch_) {
      routed[shard].push_back(session);
    }
  }
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (routed[s].empty()) continue;
    if (retrainers_[s]->published_version() == 0) {
      // The shard bootstrapped with an empty slice; everything routed to
      // it so far IS its corpus. One-time synchronous build of a tiny
      // corpus — exact, because the base corpus contributed nothing to
      // the contexts this shard owns. On failure the sessions stay in
      // the stash and the bootstrap retries with the next append (the
      // error itself lands in the retrainer's last_status()).
      std::vector<AggregatedSession>& stash = lazy_pending_[s];
      stash.insert(stash.end(),
                   std::make_move_iterator(routed[s].begin()),
                   std::make_move_iterator(routed[s].end()));
      if (LazyBootstrapShard(s, stash).ok()) stash.clear();
      continue;
    }
    retrainers_[s]->AppendSessions(std::move(routed[s]));
  }
}

Result<size_t> ShardedRetrainerSet::ConsumeFeedback(const std::string& dir) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  Result<std::vector<FeedbackRecord>> records = ReadFeedbackLog(dir);
  if (!records.ok()) return records.status();
  std::vector<FeedbackRecord> fresh;
  uint64_t max_id = feedback_watermark_;
  for (FeedbackRecord& record : *records) {
    if (record.record_id <= feedback_watermark_) continue;
    max_id = std::max(max_id, record.record_id);
    fresh.push_back(std::move(record));
  }
  std::vector<AggregatedSession> sessions = SessionsFromFeedback(fresh);
  const size_t routed = sessions.size();
  if (!sessions.empty()) AppendSessions(sessions);
  feedback_watermark_ = max_id;
  return routed;
}

Status ShardedRetrainerSet::RetrainShard(size_t s) {
  if (retrainers_[s]->published_version() == 0) {
    return Status::OK();  // empty shard, nothing routed to it yet
  }
  return retrainers_[s]->RetrainOnce();
}

Status ShardedRetrainerSet::RetrainAll() {
  Status first_error;
  for (size_t s = 0; s < retrainers_.size(); ++s) {
    const Status status = RetrainShard(s);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

void ShardedRetrainerSet::StartAll() {
  std::lock_guard<std::mutex> lock(append_mu_);
  workers_started_ = true;
  for (const auto& retrainer : retrainers_) {
    if (retrainer->published_version() > 0 && !retrainer->running()) {
      retrainer->Start();
    }
  }
}

void ShardedRetrainerSet::StopAll() {
  {
    std::lock_guard<std::mutex> lock(append_mu_);
    workers_started_ = false;
  }
  for (const auto& retrainer : retrainers_) retrainer->Stop();
}

}  // namespace sqp
