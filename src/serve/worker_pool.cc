#include "serve/worker_pool.h"

#include <algorithm>

namespace sqp {

WorkerPool::WorkerPool(size_t num_lanes) {
  const size_t workers = num_lanes > 1 ? num_lanes - 1 : 0;
  threads_.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads_.emplace_back(&WorkerPool::WorkerMain, this, w + 1);
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void WorkerPool::Run(size_t num_tasks,
                     const std::function<void(size_t, size_t)>& fn) {
  if (num_tasks == 0) return;
  if (threads_.empty() || num_tasks == 1) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    lanes_active_ = threads_.size();
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller is lane 0 and pulls tasks like any worker.
  while (true) {
    const size_t i = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (i >= num_tasks) break;
    fn(i, 0);
  }

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return lanes_active_ == 0; });
  job_ = nullptr;
}

void WorkerPool::WorkerMain(size_t lane) {
  uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(size_t, size_t)>* job = nullptr;
    size_t num_tasks = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
      num_tasks = job_tasks_;
    }
    while (true) {
      const size_t i = next_task_.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_tasks) break;
      (*job)(i, lane);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--lanes_active_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace sqp
