#ifndef SQP_SERVE_RETRAINER_H_
#define SQP_SERVE_RETRAINER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/compact_snapshot.h"
#include "core/model_snapshot.h"
#include "log/context_builder.h"
#include "serve/recommender_engine.h"

namespace sqp {

struct RetrainerOptions {
  /// Model configuration for every snapshot this retrainer builds. An empty
  /// component list is normalized to the paper's default set at
  /// construction. Components must fit in Pst::kMaxViews.
  MvmmOptions model;

  /// |Q| used for smoothing. 0 = derive from the corpus at each rebuild
  /// (largest query id seen + 1); set it explicitly when the dictionary's
  /// id space is known so retrained and from-scratch models agree exactly.
  size_t vocabulary_size = 0;

  /// Worker shards for the incremental counting pass (ContextIndex::Append).
  size_t count_workers = 1;

  /// Background mode: retrain as soon as at least this many appended
  /// sessions are pending.
  size_t min_pending_sessions = 1;

  /// Background mode: how often the worker checks for pending sessions.
  std::chrono::milliseconds poll_interval{20};

  /// Publish each rebuild as a CompactSnapshot (CSR layout, top-K nexts,
  /// 16-bit quantized probabilities) instead of the full ModelSnapshot —
  /// the serving-only deployment of the ROADMAP "Memory" item. The rebuild
  /// itself still trains the full model (retraining needs exact counts);
  /// only the published serving state is re-packed.
  bool publish_compact = false;

  /// Layout parameters used when publish_compact is set and for persisted
  /// blobs (persist_path).
  CompactOptions compact;

  /// When non-empty, every published rebuild (Bootstrap and each retrain
  /// cycle) is also written here as a compact snapshot blob
  /// (core/snapshot_io format), atomically via tmp+rename — a crash or a
  /// concurrent cold-booting replica never observes a partial file. The
  /// persisted state is always the CompactSnapshot re-pack of the rebuild
  /// (the blob format is the compact layout) regardless of
  /// publish_compact; serving replicas boot from it with
  /// RecommenderEngine::LoadAndPublish without retraining. A persist
  /// failure is reported through the returned Status / last_status() but
  /// does not roll back the in-memory publish.
  std::string persist_path;

  /// Invoked after every successful persist (Bootstrap and each retrain
  /// cycle), on the thread that rebuilt, with the publish already live.
  /// ShardedRetrainerSet uses this to re-pin the fleet manifest whenever
  /// a shard republishes its blob; anything slow belongs elsewhere (the
  /// rebuild path blocks on it).
  std::function<void()> after_persist;

  /// Persist failures retry this many times (beyond the first attempt)
  /// with exponential backoff before the cycle gives up — a transient
  /// full disk or slow NFS rename no longer silently drops a rebuild's
  /// blob. The publish itself is never rolled back; after_persist fires
  /// only once a persist succeeds.
  size_t persist_max_retries = 3;

  /// Backoff before the first retry; doubles on each subsequent one.
  std::chrono::milliseconds persist_retry_backoff{10};
};

/// Rebuild/persist counters (monotonic since construction).
struct RetrainerStats {
  uint64_t rebuilds = 0;          // snapshots published (incl. bootstrap)
  uint64_t retrain_failures = 0;  // rebuild attempts that failed to build
  uint64_t persist_retries = 0;   // extra persist attempts after a failure
  uint64_t persist_failures = 0;  // persists that gave up after retries
};

/// The streaming retrain/swap engine: consumes appended session batches,
/// extends the counting index incrementally (no from-scratch recount),
/// rebuilds the shared PST + sigma fit off to the side, and publishes the
/// resulting immutable snapshot to a RecommenderEngine atomically — the
/// full ModelSnapshot, or its CompactSnapshot re-pack when
/// RetrainerOptions::publish_compact is set.
/// Serving is never blocked: readers keep answering from the previous
/// snapshot for the whole rebuild.
///
/// Equivalence guarantee (tested): after appending batches B1..Bk to a
/// Bootstrap corpus B0 and completing a retrain, the published snapshot is
/// equivalent to training from scratch on the concatenation B0+B1+...+Bk —
/// counting is associative and the rebuild consumes the same canonical
/// entry order either way.
///
/// Threading: AppendSessions and the observers are safe from any thread.
/// Rebuilds are internally serialized; Bootstrap/RetrainOnce may be called
/// directly or a background worker can poll via Start/Stop. A publish
/// never blocks the engine's readers (see the RecommenderEngine contract):
/// readers keep answering from the previous snapshot until the atomic
/// swap, and in-flight queries finish on the snapshot they grabbed.
class Retrainer {
 public:
  Retrainer(RecommenderEngine* engine, RetrainerOptions options);
  ~Retrainer();  // stops the background worker

  Retrainer(const Retrainer&) = delete;
  Retrainer& operator=(const Retrainer&) = delete;

  /// Seeds the corpus, builds the counting index, and publishes snapshot
  /// version 1. Must be called exactly once, before anything else.
  Status Bootstrap(std::vector<AggregatedSession> corpus);

  /// As Bootstrap, but publishes `prebuilt` — a snapshot already trained
  /// on exactly `corpus` under this retrainer's model options (e.g. by
  /// TrainShardedSnapshots) — instead of rebuilding it. The counting
  /// index is still built so later appends extend it incrementally;
  /// `prebuilt` must carry version 1.
  Status Bootstrap(std::vector<AggregatedSession> corpus,
                   std::shared_ptr<const ModelSnapshot> prebuilt);

  /// Queues freshly-observed sessions for the next retrain cycle.
  /// Thread-safe; never blocks on a rebuild.
  void AppendSessions(std::vector<AggregatedSession> sessions);

  /// Closes the serving loop: reads the feedback log at `dir`
  /// (serve/feedback.h), converts clicked impressions newer than this
  /// retrainer's consume watermark into sessions (SessionsFromFeedback)
  /// and queues them via AppendSessions. Returns the number of sessions
  /// queued. Repeated calls over the same log are idempotent — the
  /// watermark advances past every record seen, clicked or not, so a
  /// click must be in the log by the time its impression is consumed
  /// (consume at session boundaries, as the CLI does; a click logged
  /// after its impression was consumed is not retroactively folded in).
  /// Thread-safe; property-tested equal to appending the equivalent
  /// sessions directly.
  Result<size_t> ConsumeFeedback(const std::string& dir);

  /// Drains pending sessions and, if any were queued, rebuilds and
  /// publishes the next snapshot version synchronously. No-op (OK) when
  /// nothing is pending.
  Status RetrainOnce();

  /// Starts/stops the background worker that polls for pending sessions
  /// and retrains. Failures are retained in last_status().
  void Start();
  void Stop();
  bool running() const;

  /// Version of the last snapshot this retrainer published (0 before
  /// Bootstrap).
  uint64_t published_version() const;

  /// Blocks until published_version() >= version (e.g. await one background
  /// retrain cycle after an append).
  void WaitForVersionAtLeast(uint64_t version) const;

  /// Status of the most recent rebuild attempt.
  Status last_status() const;

  /// Rebuild/persist counters (see RetrainerStats).
  RetrainerStats stats() const;

  size_t pending_sessions() const;
  /// Sessions in the training corpus so far; blocks while a rebuild is in
  /// flight (diagnostic accessor, not a serving-path API).
  size_t corpus_size() const;

 private:
  Status RebuildAndPublish(std::vector<AggregatedSession> fresh);
  void BackgroundLoop();
  size_t EffectiveVocabulary() const;
  /// Publishes `full` (or its compact re-pack when publish_compact is set)
  /// to the engine, advances published_version() to `version` as soon as
  /// the swap is live (persist failures never roll a publish back, so the
  /// version moves with the publish — and after_persist observers see the
  /// version the blob they are pinning carries), then persists the compact
  /// re-pack to persist_path if configured. Returns the persist status;
  /// the publish itself cannot fail.
  Status PublishAndPersist(std::shared_ptr<const ModelSnapshot> full,
                           uint64_t version);

  RecommenderEngine* engine_;
  RetrainerOptions options_;

  /// Relaxed counters (read via stats(); bumped on the rebuild thread and
  /// the persist retry loop).
  mutable std::atomic<uint64_t> rebuilds_{0};
  mutable std::atomic<uint64_t> retrain_failures_{0};
  mutable std::atomic<uint64_t> persist_retries_{0};
  mutable std::atomic<uint64_t> persist_failures_{0};

  /// Guards pending_, version_, last_status_, bootstrapped_.
  mutable std::mutex mu_;
  mutable std::condition_variable version_cv_;
  std::vector<AggregatedSession> pending_;
  uint64_t version_ = 0;
  Status last_status_;
  bool bootstrapped_ = false;

  /// Serializes ConsumeFeedback calls and guards feedback_watermark_ (the
  /// largest feedback record id already consumed).
  mutable std::mutex feedback_mu_;
  uint64_t feedback_watermark_ = 0;

  /// Serializes rebuilds; corpus_, index_ and observed_max_id_ are only
  /// touched with this held.
  mutable std::mutex retrain_mu_;
  std::vector<AggregatedSession> corpus_;
  ContextIndex index_;
  QueryId observed_max_id_ = 0;

  /// Background worker state. lifecycle_mu_ serializes Start/Stop (the run
  /// flag and worker_ must change together); stop_ is the run flag (true =
  /// not running); stop_cv_ interrupts the poll sleep.
  std::mutex lifecycle_mu_;
  std::thread worker_;
  mutable std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  std::atomic<bool> stop_{true};
};

}  // namespace sqp

#endif  // SQP_SERVE_RETRAINER_H_
