#ifndef SQP_SERVE_RECOMMENDER_ENGINE_H_
#define SQP_SERVE_RECOMMENDER_ENGINE_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/model_snapshot.h"
#include "serve/admission_queue.h"
#include "serve/deadline.h"
#include "serve/worker_pool.h"
#include "util/status.h"

namespace sqp {

/// A borrowed view of one online context (the user's session so far, oldest
/// query first). RecommendMany takes a span of these so callers can batch
/// requests without copying query sequences.
using ContextRef = std::span<const QueryId>;

#if defined(__SANITIZE_THREAD__)
#define SQP_THREAD_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SQP_THREAD_SANITIZER 1
#endif
#endif

/// Holder for the published snapshot pointer. Normal builds use the
/// lock-free std::atomic<std::shared_ptr> swap. Under ThreadSanitizer the
/// holder degrades to a mutex: libstdc++ 12's _Sp_atomic::load releases its
/// internal spinlock with a relaxed fetch_sub, which TSAN (correctly, per
/// the formal model) reports as a race against the next store's pointer
/// write — the fallback keeps the TSAN job signal-clean without muting real
/// races elsewhere.
class AtomicSnapshotPtr {
 public:
  std::shared_ptr<const ServingSnapshot> load() const {
#ifdef SQP_THREAD_SANITIZER
    std::lock_guard<std::mutex> lock(mu_);
    return ptr_;
#else
    return ptr_.load(std::memory_order_acquire);
#endif
  }

  void store(std::shared_ptr<const ServingSnapshot> snapshot) {
#ifdef SQP_THREAD_SANITIZER
    // Swap under the lock but let the displaced snapshot (potentially the
    // last reference to a whole model) destruct outside it.
    std::shared_ptr<const ServingSnapshot> old;
    {
      std::lock_guard<std::mutex> lock(mu_);
      old = std::move(ptr_);
      ptr_ = std::move(snapshot);
    }
#else
    ptr_.store(std::move(snapshot), std::memory_order_release);
#endif
  }

 private:
#ifdef SQP_THREAD_SANITIZER
  mutable std::mutex mu_;
  std::shared_ptr<const ServingSnapshot> ptr_;
#else
  std::atomic<std::shared_ptr<const ServingSnapshot>> ptr_;
#endif
};

struct EngineOptions {
  /// Worker lanes for batched serving, including the calling thread
  /// (0 = hardware concurrency clamped to [1, 16]; explicit values are
  /// clamped to [1, 64]). Single-query Recommend never touches the pool.
  size_t num_threads = 0;

  /// Batches smaller than this run inline on the calling thread — fanning
  /// out a handful of microsecond-scale walks costs more than it buys.
  size_t min_batch_fanout = 32;

  /// Admission-control knobs for the batch execution slot (lane bounds,
  /// EWMA estimator, degrade ladder). Defaults keep no-deadline traffic
  /// behaving exactly like the pre-QoS engine.
  AdmissionOptions admission;
};

/// Serving counters (monotonic since engine construction).
struct EngineStats {
  uint64_t queries_served = 0;      // single + batched queries
  uint64_t batches_served = 0;      // RecommendMany calls
  uint64_t snapshots_published = 0; // Publish calls

  /// Per-lane QoS counters (admitted / shed / expired / degraded) and
  /// latency histograms, plus the admission EWMA. Populated by batch
  /// traffic and by deadline-bounded single queries; unbounded single
  /// queries (the legacy spelling included) take the fast path and stay
  /// out of it to keep the hot path clock-free.
  AdmissionStats admission;
};

/// The concurrent serving front-end of the recommender: any number of
/// threads call Recommend / RecommendMany while retraining publishes fresh
/// snapshots through a lock-free atomic shared_ptr swap. The engine serves
/// any ServingSnapshot variant — the full ModelSnapshot or the quantized
/// CompactSnapshot — through the identical seam; readers never know which.
///
/// Consistency contract (the one-published-snapshot invariant): every query
/// is answered from exactly one fully-built, fully-published snapshot — a
/// query grabs the snapshot pointer once and never observes a model
/// mid-build; a batch is answered entirely from one snapshot even if a swap
/// lands mid-batch. Readers are never blocked by a publish, and a snapshot
/// stays alive (shared_ptr refcount) until the last in-flight query drops
/// it.
///
/// Thread-safety: all const methods are safe from any number of threads
/// concurrently with Publish from any other thread. Per-thread scratch is
/// managed internally; callers hold no serving state.
class RecommenderEngine {
 public:
  explicit RecommenderEngine(EngineOptions options = {});

  RecommenderEngine(const RecommenderEngine&) = delete;
  RecommenderEngine& operator=(const RecommenderEngine&) = delete;

  /// Atomically swaps the serving snapshot. Callers build the snapshot off
  /// to the side (ModelSnapshot::Build, optionally re-packed by
  /// CompactSnapshot::FromSnapshot, typically via a Retrainer) and publish
  /// it here; in-flight queries finish on the snapshot they grabbed. Safe
  /// from any thread; never blocks readers.
  void Publish(std::shared_ptr<const ServingSnapshot> snapshot);

  /// Cold-boot path: maps a persisted compact snapshot blob (written by
  /// core/snapshot_io — e.g. a Retrainer with persist_path set, or
  /// recommender_cli --save-snapshot) zero-copy and publishes it. The
  /// replica serves after O(file size) page-ins with no retraining; the
  /// published snapshot carries the version stored in the blob. On any
  /// validation failure (missing, truncated or corrupt blob) the current
  /// snapshot stays live and the error is returned.
  Status LoadAndPublish(const std::string& path);

  /// The currently-published snapshot (null before the first Publish).
  /// Safe from any thread.
  std::shared_ptr<const ServingSnapshot> CurrentSnapshot() const;

  /// Version of the current snapshot, 0 before the first Publish.
  uint64_t current_version() const;

  /// THE single-query serving path (canonical signature — every other
  /// Recommend spelling is an inline wrapper over this one): one snapshot
  /// grab, one shared-tree walk, per-thread scratch. With an unbounded
  /// deadline (the default ServeOptions) the request takes a fast path
  /// with no clock reads or QoS accounting — the legacy hot-path
  /// contract; with a bounded one it may be shed on arrival (status
  /// kDeadlineExceeded) or served with a reduced top_n under overload
  /// (degraded = true). Single queries never wait for the batch slot —
  /// the deadline only guards against serving a request that is already
  /// dead. kUnavailable before the first Publish.
  ServeResult Recommend(ContextRef context, size_t top_n,
                        const ServeOptions& options) const;

  /// THE batched serving path (canonical signature): answers every
  /// context from ONE snapshot, fanning the batch out across the worker
  /// pool (small batches run inline). Results are positionally aligned
  /// with `contexts`. With an unbounded deadline results are
  /// bit-identical to the legacy RecommendMany; with a bounded one the
  /// batch may be shed whole at admission (queue full or deadline
  /// unmeetable given the EWMA backlog estimate), cut mid-batch when the
  /// deadline expires (partial results, remaining items marked
  /// kDeadlineExceeded), or served with a reduced top_n under overload.
  /// Per-item outcomes are in BatchResult::statuses.
  BatchResult RecommendMany(std::span<const ContextRef> contexts,
                            size_t top_n, const ServeOptions& options) const;

  /// Canonical batch signature for callers holding owned query sequences.
  BatchResult RecommendMany(const std::vector<std::vector<QueryId>>& contexts,
                            size_t top_n, const ServeOptions& options) const {
    return RecommendMany(AsRefs(contexts), top_n, options);
  }

  // ------------------------------------------------- legacy signatures
  // Thin wrappers over the canonical ServeOptions paths, kept for the
  // pre-QoS call sites: unbounded deadline, version-out instead of a
  // result struct, plain Recommendation vectors. Bit-identical answers.

  /// Legacy single-query spelling. `served_version`, when non-null,
  /// receives the version of the snapshot that answered (0 if none) —
  /// provenance for callers that audit which model produced a result.
  Recommendation Recommend(ContextRef context, size_t top_n,
                           uint64_t* served_version = nullptr) const {
    ServeResult served = Recommend(context, top_n, ServeOptions{});
    if (served_version != nullptr) *served_version = served.served_version;
    return std::move(served.recommendation);
  }

  /// Legacy batch spelling: never shed, never degraded, waits however
  /// long the backlog takes. Pool-sized batches ride the bulk lane so
  /// they never starve interactive traffic.
  std::vector<Recommendation> RecommendMany(
      std::span<const ContextRef> contexts, size_t top_n,
      uint64_t* served_version = nullptr) const {
    ServeOptions options;
    options.lane = contexts.size() >= options_.min_batch_fanout
                       ? QosLane::kBulk
                       : QosLane::kInteractive;
    BatchResult batch = RecommendMany(contexts, top_n, options);
    if (served_version != nullptr) *served_version = batch.served_version;
    return std::move(batch.results);
  }

  /// Legacy batch spelling over owned query sequences.
  std::vector<Recommendation> RecommendMany(
      const std::vector<std::vector<QueryId>>& contexts, size_t top_n,
      uint64_t* served_version = nullptr) const {
    std::vector<ContextRef> refs = AsRefs(contexts);
    return RecommendMany(std::span<const ContextRef>(refs), top_n,
                         served_version);
  }

  size_t num_threads() const { return pool_.num_lanes(); }
  EngineStats stats() const;

 private:
  /// Borrowed-view projection of owned query sequences (the returned refs
  /// are only valid while `contexts` is).
  static std::vector<ContextRef> AsRefs(
      const std::vector<std::vector<QueryId>>& contexts) {
    std::vector<ContextRef> refs;
    refs.reserve(contexts.size());
    for (const std::vector<QueryId>& context : contexts) {
      refs.emplace_back(context.data(), context.size());
    }
    return refs;
  }

  EngineOptions options_;
  AtomicSnapshotPtr snapshot_;
  mutable WorkerPool pool_;
  /// The batch execution slot: one job at a time on the pool; concurrent
  /// batch callers wait (or are shed) in the bounded two-lane admission
  /// queue instead of convoying on a mutex.
  mutable AdmissionQueue admission_;
  /// Per-lane scratch for batch jobs, guarded by admission-slot ownership.
  mutable std::vector<SnapshotScratch> lane_scratch_;
  /// The per-query counter is sharded across cache-line-padded slots
  /// (indexed by a thread-stable hash) so concurrent single-query readers
  /// don't ping-pong one line on the hot path; stats() sums the shards.
  struct alignas(64) CounterShard {
    std::atomic<uint64_t> value{0};
  };
  static constexpr size_t kCounterShards = 16;
  mutable std::array<CounterShard, kCounterShards> queries_served_;
  mutable std::atomic<uint64_t> batches_served_{0};
  std::atomic<uint64_t> snapshots_published_{0};
};

}  // namespace sqp

#endif  // SQP_SERVE_RECOMMENDER_ENGINE_H_
