#ifndef SQP_SERVE_DEADLINE_H_
#define SQP_SERVE_DEADLINE_H_

/// The serving-layer QoS vocabulary: a monotonic-clock deadline, the two
/// admission priority lanes, and the request/response types the
/// deadline-aware Recommend/RecommendMany overloads speak. This header
/// defines the contract the upcoming cross-process `net/` tier will expose
/// on the wire, so it stays free of queue implementation detail
/// (serve/admission_queue.h holds that).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/prediction_model.h"
#include "util/status.h"

namespace sqp {

struct FeedbackHook;  // serve/feedback.h

/// Admission priority class. Interactive traffic (the paper's live
/// as-you-type suggestion requests) is always granted the execution slot
/// ahead of bulk traffic (offline scoring, eval sweeps, backfills),
/// regardless of arrival order; within a lane grants are FIFO. Not to be
/// confused with WorkerPool "lanes" (its worker threads).
enum class QosLane : uint8_t {
  kInteractive = 0,
  kBulk = 1,
};

inline constexpr size_t kNumQosLanes = 2;

inline const char* QosLaneName(QosLane lane) {
  return lane == QosLane::kInteractive ? "interactive" : "bulk";
}

/// An absolute monotonic-clock deadline. Default-constructed deadlines are
/// unbounded: the request waits however long it must and is never shed —
/// exactly the semantics the deadline-free API always had. Deadlines are
/// absolute (steady_clock time points), so queue wait, retries and
/// mid-batch checks all burn the same budget; callers with a latency
/// budget use Deadline::After(budget) at arrival.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unbounded (never expires, never shed).
  Deadline() = default;

  static Deadline None() { return Deadline(); }

  /// Expires `budget` from now.
  static Deadline After(std::chrono::microseconds budget) {
    return At(Clock::now() + budget);
  }

  /// Expires at the given absolute time.
  static Deadline At(Clock::time_point at) {
    Deadline d;
    d.bounded_ = true;
    d.at_ = at;
    return d;
  }

  bool bounded() const { return bounded_; }
  Clock::time_point time() const { return at_; }

  bool Expired(Clock::time_point now = Clock::now()) const {
    return bounded_ && now >= at_;
  }

  /// Microseconds until expiry (+inf when unbounded, <= 0 once expired).
  double RemainingMicros(Clock::time_point now = Clock::now()) const {
    if (!bounded_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::micro>(at_ - now).count();
  }

 private:
  bool bounded_ = false;
  Clock::time_point at_{};
};

/// Per-request QoS options for the deadline-aware serving overloads.
struct ServeOptions {
  /// Unbounded by default: the request behaves exactly like the
  /// deadline-free API (waits, never shed, never degraded).
  Deadline deadline;

  /// Admission priority. Single queries and small inline batches never
  /// contend for the pool, so the lane only matters for pool-sized
  /// batches.
  QosLane lane = QosLane::kInteractive;

  /// Closed-loop serving hook (serve/feedback.h): when set, every served
  /// answer is passed through the hook's exploration reranker and logged
  /// as a feedback impression. Null (the default) — and a hook whose
  /// exploration is disabled — leave served answers bit-identical to
  /// hook-free serving. The hook must outlive the request; one hook may
  /// be shared by any number of concurrent requests.
  const FeedbackHook* feedback = nullptr;
};

/// Outcome of one deadline-aware single-query request.
struct ServeResult {
  Recommendation recommendation;

  /// kOk — served; kDeadlineExceeded — shed (deadline expired on
  /// arrival); kUnavailable — no published snapshot for the responsible
  /// replica/shard (recommendation is uncovered-empty either way).
  StatusCode status = StatusCode::kOk;

  /// Version of the snapshot that answered, 0 if none did.
  uint64_t served_version = 0;

  /// True when overload pressure reduced the effective top_n.
  bool degraded = false;

  /// Feedback record id assigned by ServeOptions::feedback's log (0 when
  /// no hook was set or nothing was logged). Callers use it to attribute
  /// a later click to this impression via FeedbackLog::RecordClick.
  uint64_t feedback_record_id = 0;
};

/// Outcome of one deadline-aware batch. The batch may be admitted in
/// full, admitted and cut mid-flight by its deadline (partial results),
/// or shed whole at admission — per-item `statuses` always says which.
struct BatchResult {
  /// Positionally aligned with the request's contexts. Items not served
  /// (shed, expired, unavailable) are uncovered-empty.
  std::vector<Recommendation> results;

  /// Per-item outcome, aligned with `results`: kOk — served;
  /// kDeadlineExceeded — the deadline expired before this item was
  /// answered (shed at admission or cut mid-batch); kResourceExhausted —
  /// shed because the lane's admission queue was full; kUnavailable — the
  /// owning replica/shard has no published snapshot.
  std::vector<StatusCode> statuses;

  /// Items actually answered (count of kOk statuses).
  size_t served = 0;

  /// Version of the snapshot that answered (single-engine batches; 0 for
  /// sharded fleets, whose per-shard versions live in ShardedStats).
  uint64_t served_version = 0;

  /// The admission decision for the batch as a whole: OK when the batch
  /// got the execution slot (even if the deadline later cut it short),
  /// DeadlineExceeded / ResourceExhausted when it was shed outright.
  Status admission;

  /// The top_n actually served; < the requested top_n when the overload
  /// degrade ladder engaged.
  size_t effective_top_n = 0;
  bool degraded = false;
};

}  // namespace sqp

#endif  // SQP_SERVE_DEADLINE_H_
