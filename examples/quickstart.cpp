// Quickstart: train an MVMM query recommender on a handful of sessions and
// ask it for next-query recommendations.
//
//   $ ./build/examples/quickstart
//
// The sessions below follow the paper's Table V style (refinement chains).

#include <cstdio>
#include <vector>

#include "core/mvmm_model.h"
#include "log/query_dictionary.h"
#include "log/session_aggregator.h"

int main() {
  using namespace sqp;

  // 1. Intern queries and build aggregated sessions. In a real deployment
  //    these come from the log pipeline (see examples/log_pipeline.cpp).
  QueryDictionary dictionary;
  const std::vector<std::pair<std::vector<const char*>, uint64_t>> raw = {
      {{"kidney stones", "kidney stone symptoms"}, 40},
      {{"kidney stones", "kidney stone symptoms",
        "kidney stone symptoms in women"}, 15},
      {{"kidney stones", "kidney stone treatment"}, 12},
      {{"sign language", "learn sign language"}, 30},
      {{"nokia n73", "nokia n73 themes", "free themes nokia n73"}, 22},
      {{"nokia n73", "nokia n73 review"}, 9},
      {{"indonesia", "java", "java island"}, 18},
      {{"sun microsystems", "java", "sun java"}, 14},
  };

  SessionAggregator aggregator;
  for (const auto& [queries, times] : raw) {
    Session session;
    for (const char* q : queries) {
      session.queries.push_back(dictionary.Intern(q));
    }
    for (uint64_t i = 0; i < times; ++i) aggregator.AddSession(session);
  }
  const std::vector<AggregatedSession> sessions = aggregator.Finish();

  // 2. Train the paper's best model, the MVMM (11 VMM components with
  //    epsilon in {0.0, 0.01, ..., 0.1}).
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = dictionary.size();
  MvmmModel model;
  SQP_CHECK_OK(model.Train(data));

  // 3. Recommend. Note the context sensitivity: "java" alone is ambiguous,
  //    but "indonesia -> java" disambiguates toward the island (the paper's
  //    motivating example).
  const std::vector<std::vector<const char*>> contexts = {
      {"kidney stones"},
      {"kidney stones", "kidney stone symptoms"},
      {"java"},
      {"indonesia", "java"},
      {"sun microsystems", "java"},
  };
  for (const auto& context_strings : contexts) {
    std::vector<QueryId> context;
    std::string rendered;
    for (const char* q : context_strings) {
      context.push_back(*dictionary.Lookup(q));
      if (!rendered.empty()) rendered += " => ";
      rendered += q;
    }
    const Recommendation rec = model.Recommend(context, 3);
    std::printf("context: [%s]\n", rendered.c_str());
    if (!rec.covered) {
      std::printf("  (no recommendation: context not covered)\n");
      continue;
    }
    for (size_t i = 0; i < rec.queries.size(); ++i) {
      std::printf("  %zu. %-35s score %.4f\n", i + 1,
                  dictionary.Text(rec.queries[i].query).c_str(),
                  rec.queries[i].score);
    }
  }
  return 0;
}
