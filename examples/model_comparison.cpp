// Side-by-side comparison of all five model families on one synthetic
// workload, including per-context-length accuracy — a compact version of
// the paper's Figures 8-11 for interactive exploration.
//
//   $ ./build/examples/model_comparison

#include <iostream>

#include "core/model_factory.h"
#include "eval/coverage.h"
#include "eval/evaluator.h"
#include "eval/log_loss.h"
#include "eval/table_printer.h"
#include "log/data_reduction.h"
#include "log/session_aggregator.h"
#include "log/session_segmenter.h"
#include "synth/log_synthesizer.h"

int main() {
  using namespace sqp;

  // Build a mid-sized corpus.
  Vocabulary vocabulary(
      VocabularyConfig{.num_terms = 2000, .synonym_fraction = 0.3}, 11);
  TopicModel topics(&vocabulary, TopicModelConfig{}, 12);
  SynthesizerConfig config;
  config.num_sessions = 40000;
  config.num_machines = 1500;
  config.session.head_intents = topics.num_intents() * 7 / 10;
  LogSynthesizer synthesizer(&topics, config);
  const SynthCorpus train_corpus = synthesizer.Synthesize(13, nullptr);
  SynthesizerConfig test_config = config;
  test_config.num_sessions = 10000;
  test_config.session.novel_fraction = 0.35;
  LogSynthesizer test_synthesizer(&topics, test_config);
  const SynthCorpus test_corpus = test_synthesizer.Synthesize(14, nullptr);

  QueryDictionary dictionary;
  SessionSegmenter segmenter;
  std::vector<Session> train_segmented;
  std::vector<Session> test_segmented;
  SQP_CHECK_OK(
      segmenter.Segment(train_corpus.records, &dictionary, &train_segmented));
  SQP_CHECK_OK(
      segmenter.Segment(test_corpus.records, &dictionary, &test_segmented));
  SessionAggregator train_aggregator;
  train_aggregator.Add(train_segmented);
  SessionAggregator test_aggregator;
  test_aggregator.Add(test_segmented);
  ReductionOptions reduction;
  reduction.min_frequency_exclusive = 1;
  const std::vector<AggregatedSession> train =
      ReduceSessions(train_aggregator.Finish(), reduction, nullptr);
  const std::vector<AggregatedSession> test =
      ReduceSessions(test_aggregator.Finish(), reduction, nullptr);
  const std::vector<GroundTruthEntry> truth = BuildGroundTruth(test, 5);

  TrainingData data;
  data.sessions = &train;
  data.vocabulary_size = dictionary.size();
  const auto suite = CreatePaperSuite(/*vmm_max_depth=*/5);
  SQP_CHECK_OK(TrainAll(suite, data));

  std::cout << "Overall quality (test split: " << truth.size()
            << " unique contexts)\n";
  TablePrinter overall(
      {"model", "NDCG@1", "NDCG@5", "coverage", "log-loss", "states",
       "memory (MB)"});
  for (const auto& model : suite) {
    const ModelAccuracy acc =
        EvaluateAccuracy(*model, truth, AccuracyOptions{});
    const CoverageResult cov = MeasureCoverage(*model, truth);
    const ModelStats stats = model->Stats();
    overall.AddRow(
        {std::string(model->Name()), FormatDouble(acc.ndcg_overall.at(1)),
         FormatDouble(acc.ndcg_overall.at(5)), FormatPercent(cov.overall),
         FormatDouble(AverageLogLoss(*model, test), 3),
         std::to_string(stats.num_states),
         FormatDouble(static_cast<double>(stats.memory_bytes) / 1048576.0,
                      1)});
  }
  overall.Print(std::cout);

  std::cout << "\nNDCG@5 by context length (paper Fig. 8/9 shape)\n";
  TablePrinter by_length({"model", "len 1", "len 2", "len 3", "len 4"});
  for (const auto& model : suite) {
    const ModelAccuracy acc =
        EvaluateAccuracy(*model, truth, AccuracyOptions{});
    std::vector<std::string> row{std::string(model->Name())};
    for (size_t len = 1; len <= 4; ++len) {
      const auto& ndcg5 = acc.ndcg.at(5);
      row.push_back(ndcg5.count(len) ? FormatDouble(ndcg5.at(len)) : "-");
    }
    by_length.AddRow(std::move(row));
  }
  by_length.Print(std::cout);

  std::cout << "\nCoverage by context length (paper Fig. 11 shape)\n";
  TablePrinter coverage_table({"model", "len 1", "len 2", "len 3", "len 4"});
  for (const auto& model : suite) {
    const CoverageResult cov = MeasureCoverage(*model, truth);
    std::vector<std::string> row{std::string(model->Name())};
    for (size_t len = 1; len <= 4; ++len) {
      row.push_back(cov.by_context_length.count(len)
                        ? FormatPercent(cov.by_context_length.at(len))
                        : "-");
    }
    coverage_table.AddRow(std::move(row));
  }
  coverage_table.Print(std::cout);
  return 0;
}
