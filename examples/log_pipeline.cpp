// End-to-end reproduction of the paper's offline pipeline on synthetic
// search logs:
//
//   synthesize raw click-stream -> write TSV log file -> read it back ->
//   segment into sessions (30-minute rule) -> aggregate identical sessions
//   -> data reduction -> train the model suite -> evaluate NDCG + coverage.
//
//   $ ./build/examples/log_pipeline [num_train_sessions]

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "core/model_factory.h"
#include "eval/coverage.h"
#include "eval/evaluator.h"
#include "eval/table_printer.h"
#include "log/data_reduction.h"
#include "log/log_io.h"
#include "log/session_aggregator.h"
#include "log/session_segmenter.h"
#include "log/session_stats.h"
#include "synth/log_synthesizer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace sqp;
  const size_t train_sessions =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 30000;

  std::printf("== 1. Synthesize raw search logs ==\n");
  Vocabulary vocabulary(
      VocabularyConfig{.num_terms = 2500, .synonym_fraction = 0.3}, 1);
  TopicModel topics(&vocabulary, TopicModelConfig{}, 2);
  SynthesizerConfig synth_config;
  synth_config.num_sessions = train_sessions;
  synth_config.num_machines = train_sessions / 25 + 1;
  // Temporal drift between the splits, as in real logs: training samples
  // the established intents; the test period adds novel ones.
  synth_config.session.head_intents = topics.num_intents() * 7 / 10;
  LogSynthesizer synthesizer(&topics, synth_config);
  RelatednessOracle oracle;
  const SynthCorpus train_corpus = synthesizer.Synthesize(3, &oracle);

  SynthesizerConfig test_config = synth_config;
  test_config.num_sessions = train_sessions / 4;  // 120-day vs 30-day split
  test_config.session.novel_fraction = 0.35;
  LogSynthesizer test_synthesizer(&topics, test_config);
  const SynthCorpus test_corpus = test_synthesizer.Synthesize(4, &oracle);
  std::printf("  train records: %zu, test records: %zu\n",
              train_corpus.records.size(), test_corpus.records.size());

  std::printf("== 2. Round-trip the raw log through the TSV file format ==\n");
  const std::string path =
      (std::filesystem::temp_directory_path() / "sqp_example_log.tsv")
          .string();
  SQP_CHECK_OK(WriteLogFile(path, train_corpus.records));
  std::vector<RawLogRecord> records;
  SQP_CHECK_OK(ReadLogFile(path, &records));
  std::printf("  wrote+read %zu records at %s\n", records.size(),
              path.c_str());
  std::remove(path.c_str());

  std::printf("== 3. Segment sessions (30-minute rule) ==\n");
  QueryDictionary dictionary;
  SessionSegmenter segmenter;
  std::vector<Session> train_segmented;
  std::vector<Session> test_segmented;
  SQP_CHECK_OK(segmenter.Segment(records, &dictionary, &train_segmented));
  SQP_CHECK_OK(
      segmenter.Segment(test_corpus.records, &dictionary, &test_segmented));
  std::printf("  train sessions: %zu, test sessions: %zu, unique queries: %zu\n",
              train_segmented.size(), test_segmented.size(),
              dictionary.size());

  std::printf("== 4. Aggregate + reduce ==\n");
  SessionAggregator train_aggregator;
  train_aggregator.Add(train_segmented);
  SessionAggregator test_aggregator;
  test_aggregator.Add(test_segmented);
  ReductionOptions reduction;
  reduction.min_frequency_exclusive = 1;  // scaled-down analog of the
                                          // paper's <=5 cut
  reduction.max_session_length = 10;
  ReductionReport report;
  const std::vector<AggregatedSession> train =
      ReduceSessions(train_aggregator.Finish(), reduction, &report);
  const std::vector<AggregatedSession> test =
      ReduceSessions(test_aggregator.Finish(), reduction, nullptr);
  std::printf("  kept %llu/%llu unique sessions (%.1f%% of weight); mean "
              "length %.2f; power-law alpha %.2f\n",
              static_cast<unsigned long long>(report.sessions_kept),
              static_cast<unsigned long long>(report.sessions_in),
              100.0 * report.kept_weight_fraction(), MeanSessionLength(train),
              FrequencyPowerLawAlpha(train));

  std::printf("== 5. Train the paper suite ==\n");
  TrainingData data;
  data.sessions = &train;
  data.vocabulary_size = dictionary.size();
  const auto suite = CreatePaperSuite(/*vmm_max_depth=*/5);
  for (const auto& model : suite) {
    WallTimer timer;
    SQP_CHECK_OK(model->Train(data));
    std::printf("  trained %-22s in %7.1f ms (%llu states)\n",
                std::string(model->Name()).c_str(), timer.ElapsedMillis(),
                static_cast<unsigned long long>(model->Stats().num_states));
  }

  std::printf("== 6. Evaluate ==\n");
  const std::vector<GroundTruthEntry> truth = BuildGroundTruth(test, 5);
  AccuracyOptions accuracy_options;
  TablePrinter table({"model", "NDCG@1", "NDCG@3", "NDCG@5", "coverage"});
  for (const auto& model : suite) {
    const ModelAccuracy acc = EvaluateAccuracy(*model, truth, accuracy_options);
    const CoverageResult cov = MeasureCoverage(*model, truth);
    table.AddRow({std::string(model->Name()),
                  FormatDouble(acc.ndcg_overall.at(1)),
                  FormatDouble(acc.ndcg_overall.at(3)),
                  FormatDouble(acc.ndcg_overall.at(5)),
                  FormatPercent(cov.overall)});
  }
  table.Print(std::cout);
  return 0;
}
