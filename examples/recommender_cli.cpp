// Interactive query recommender: trains an MVMM on a synthetic corpus,
// then reads query sessions from stdin and prints top-5 recommendations
// after every query — the paper's "online query recommendation phase".
//
//   $ ./build/examples/recommender_cli            # interactive
//   $ printf "first query\nsecond query\n" | ./build/examples/recommender_cli
//
// An empty line resets the session context. Because the corpus is
// synthetic, useful inputs are queries the trainer has seen; the program
// prints a few popular example queries at startup for copy/paste.

#include <iostream>
#include <string>

#include "core/mvmm_model.h"
#include "log/data_reduction.h"
#include "log/session_aggregator.h"
#include "log/session_segmenter.h"
#include "synth/log_synthesizer.h"

int main() {
  using namespace sqp;

  std::cerr << "training MVMM on a synthetic corpus..." << std::flush;
  Vocabulary vocabulary(
      VocabularyConfig{.num_terms = 1500, .synonym_fraction = 0.3}, 21);
  TopicModel topics(&vocabulary, TopicModelConfig{}, 22);
  SynthesizerConfig config;
  config.num_sessions = 30000;
  config.num_machines = 1000;
  LogSynthesizer synthesizer(&topics, config);
  const SynthCorpus corpus = synthesizer.Synthesize(23, nullptr);

  QueryDictionary dictionary;
  SessionSegmenter segmenter;
  std::vector<Session> segmented;
  SQP_CHECK_OK(segmenter.Segment(corpus.records, &dictionary, &segmented));
  SessionAggregator aggregator;
  aggregator.Add(segmented);
  ReductionOptions reduction;
  reduction.min_frequency_exclusive = 1;
  const std::vector<AggregatedSession> sessions =
      ReduceSessions(aggregator.Finish(), reduction, nullptr);

  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = dictionary.size();
  MvmmOptions options;
  options.default_max_depth = 5;
  MvmmModel model(options);
  SQP_CHECK_OK(model.Train(data));
  std::cerr << " done (" << sessions.size() << " unique sessions, "
            << dictionary.size() << " unique queries)\n";

  std::cerr << "example queries you can try:\n";
  for (size_t i = 0; i < sessions.size() && i < 5; ++i) {
    std::cerr << "  " << dictionary.Text(sessions[i].queries[0]) << "\n";
  }
  std::cerr << "enter queries (empty line = new session, EOF = quit):\n";

  std::vector<QueryId> context;
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string normalized = QueryDictionary::Normalize(line);
    if (normalized.empty()) {
      context.clear();
      std::cout << "-- new session --\n";
      continue;
    }
    const auto id = dictionary.Lookup(normalized);
    if (!id.has_value()) {
      std::cout << "(query \"" << normalized
                << "\" is outside the trained vocabulary; session continues)"
                << "\n";
      continue;
    }
    context.push_back(*id);
    const Recommendation rec = model.Recommend(context, 5);
    if (!rec.covered) {
      std::cout << "(no recommendation for this context)\n";
      continue;
    }
    std::cout << "recommendations (used last " << rec.matched_length
              << " queries):\n";
    for (size_t i = 0; i < rec.queries.size(); ++i) {
      std::cout << "  " << (i + 1) << ". "
                << dictionary.Text(rec.queries[i].query) << "  ["
                << rec.queries[i].score << "]\n";
    }
  }
  return 0;
}
