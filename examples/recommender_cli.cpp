// Interactive query recommender driving the concurrent serving subsystem:
// trains an MVMM snapshot on a synthetic corpus (or cold-boots one from a
// persisted blob), publishes it to a RecommenderEngine, then reads query
// sessions from stdin and prints top-5 recommendations after every query —
// the paper's "online query recommendation phase", served the way
// production would serve it.
//
//   $ ./build/example_recommender_cli                 # interactive
//   $ printf "first query\nsecond query\n" | ./build/example_recommender_cli
//
// Flags:
//   --threads N   engine worker lanes for batched serving (default 1)
//   --batch N     buffer N contexts and answer them via one RecommendMany
//                 (default 1 = answer each query immediately)
//   --tail        treat stdin as a live log tail: every completed session
//                 (terminated by an empty line) is appended to the streaming
//                 retrainer, which rebuilds and hot-swaps the model in the
//                 background; unseen queries join the vocabulary live
//   --compact     publish compact serving snapshots (CSR layout, top-16
//                 nexts, 16-bit quantized counts) instead of the full
//                 model — the small-footprint serving-only deployment
//   --save-snapshot PATH
//                 persist every published rebuild as a compact snapshot
//                 blob at PATH (atomic tmp+rename; the dictionary lands at
//                 PATH.dict) — the artifact other replicas cold-boot from
//   --load-snapshot PATH
//                 skip training entirely: mmap the blob at PATH (and read
//                 PATH.dict), publish it and serve. Boot is O(file size)
//                 page-ins — bench/coldstart measures the speedup
//
// An empty line resets the session context. Because the corpus is
// synthetic, useful inputs are queries the trainer has seen; the program
// prints a few popular example queries at startup for copy/paste.

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/serialization.h"
#include "core/snapshot_io.h"
#include "log/data_reduction.h"
#include "log/session_aggregator.h"
#include "log/session_segmenter.h"
#include "serve/recommender_engine.h"
#include "serve/retrainer.h"
#include "synth/log_synthesizer.h"
#include "util/timer.h"

namespace {

using namespace sqp;

struct CliOptions {
  size_t threads = 1;
  size_t batch = 1;
  bool tail = false;
  bool compact = false;
  std::string save_snapshot;
  std::string load_snapshot;
};

[[noreturn]] void Usage() {
  std::cerr << "usage: recommender_cli [--threads N] [--batch N] [--tail] "
               "[--compact]\n"
               "                       [--save-snapshot PATH | "
               "--load-snapshot PATH]\n"
               "(--load-snapshot serves a persisted blob and is "
               "incompatible with --tail/--save-snapshot)\n";
  std::exit(2);
}

size_t ParseCount(const char* text, size_t max_value) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 1 ||
      static_cast<unsigned long>(value) > max_value) {
    Usage();
  }
  return static_cast<size_t>(value);
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tail") {
      options.tail = true;
    } else if (arg == "--compact") {
      options.compact = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = ParseCount(argv[++i], 64);
    } else if (arg == "--batch" && i + 1 < argc) {
      options.batch = ParseCount(argv[++i], 1 << 16);
    } else if (arg == "--save-snapshot" && i + 1 < argc) {
      options.save_snapshot = argv[++i];
    } else if (arg == "--load-snapshot" && i + 1 < argc) {
      options.load_snapshot = argv[++i];
    } else {
      Usage();
    }
  }
  if (!options.load_snapshot.empty() &&
      (options.tail || !options.save_snapshot.empty())) {
    Usage();  // a cold-booted replica has no corpus to retrain or persist
  }
  return options;
}

void PrintRecommendation(const QueryDictionary& dictionary,
                         const std::vector<QueryId>& context,
                         const Recommendation& rec) {
  std::cout << "after \"" << dictionary.Text(context.back()) << "\": ";
  if (!rec.covered) {
    std::cout << "(no recommendation for this context)\n";
    return;
  }
  std::cout << "recommendations (used last " << rec.matched_length
            << " queries):\n";
  for (size_t i = 0; i < rec.queries.size(); ++i) {
    std::cout << "  " << (i + 1) << ". "
              << dictionary.Text(rec.queries[i].query) << "  ["
              << rec.queries[i].score << "]\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = ParseArgs(argc, argv);

  QueryDictionary dictionary;
  RecommenderEngine engine(EngineOptions{.num_threads = cli.threads});
  std::unique_ptr<Retrainer> retrainer;  // training mode only
  std::vector<AggregatedSession> example_sessions;

  if (!cli.load_snapshot.empty()) {
    // Cold boot: the model comes straight off the persisted blob, no
    // synthesis, no training.
    WallTimer timer;
    SQP_CHECK_OK(
        LoadDictionary(cli.load_snapshot + ".dict", &dictionary));
    SQP_CHECK_OK(engine.LoadAndPublish(cli.load_snapshot));
    const ModelStats stats = engine.CurrentSnapshot()->Stats();
    std::cerr << "cold-booted model v" << engine.current_version()
              << " from " << cli.load_snapshot << " in "
              << timer.ElapsedMillis() << " ms (" << stats.num_states
              << " states, " << stats.num_entries << " entries, "
              << dictionary.size() << " dictionary queries)\n";
  } else {
    std::cerr << "training MVMM on a synthetic corpus..." << std::flush;
    Vocabulary vocabulary(
        VocabularyConfig{.num_terms = 1500, .synonym_fraction = 0.3}, 21);
    TopicModel topics(&vocabulary, TopicModelConfig{}, 22);
    SynthesizerConfig config;
    config.num_sessions = 30000;
    config.num_machines = 1000;
    LogSynthesizer synthesizer(&topics, config);
    const SynthCorpus corpus = synthesizer.Synthesize(23, nullptr);

    SessionSegmenter segmenter;
    std::vector<Session> segmented;
    SQP_CHECK_OK(segmenter.Segment(corpus.records, &dictionary, &segmented));
    SessionAggregator aggregator;
    aggregator.Add(segmented);
    ReductionOptions reduction;
    reduction.min_frequency_exclusive = 1;
    std::vector<AggregatedSession> sessions =
        ReduceSessions(aggregator.Finish(), reduction, nullptr);
    example_sessions.assign(sessions.begin(),
                            sessions.begin() +
                                std::min<size_t>(5, sessions.size()));

    // The serving stack: engine + streaming retrainer owning the corpus.
    RetrainerOptions retrain_options;
    retrain_options.model.default_max_depth = 5;
    retrain_options.vocabulary_size = 0;  // grow with live-interned queries
    retrain_options.poll_interval = std::chrono::milliseconds(50);
    retrain_options.publish_compact = cli.compact;
    retrain_options.persist_path = cli.save_snapshot;
    retrainer = std::make_unique<Retrainer>(&engine, retrain_options);
    SQP_CHECK_OK(retrainer->Bootstrap(std::move(sessions)));
    if (!cli.save_snapshot.empty()) {
      // The dictionary rides along so a cold-booting replica can map ids
      // back to query strings. (With --tail, later interned queries only
      // land in future runs' dictionaries — the blob itself is id-based.)
      SQP_CHECK_OK(
          SaveDictionary(dictionary, cli.save_snapshot + ".dict"));
      std::cerr << " wrote snapshot blob to " << cli.save_snapshot
                << " (+ .dict);" << std::flush;
    }
    if (cli.tail) retrainer->Start();

    std::cerr << " done (" << retrainer->corpus_size()
              << " unique sessions, " << dictionary.size()
              << " unique queries)\n";
  }

  std::cerr << "serving with " << engine.num_threads()
            << " engine lane(s), batch " << cli.batch
            << (cli.compact ? ", compact snapshots" : "")
            << (!cli.load_snapshot.empty() ? ", mmap-booted snapshot" : "")
            << (cli.tail ? ", live retraining on session tails" : "")
            << "\n";
  if (cli.compact || !cli.load_snapshot.empty()) {
    const ModelStats stats = engine.CurrentSnapshot()->Stats();
    std::cerr << "compact serving model: " << stats.num_states
              << " states, " << stats.num_entries << " entries, "
              << stats.memory_bytes / 1024 << " KiB\n";
  }
  if (!example_sessions.empty()) {
    std::cerr << "example queries you can try:\n";
    for (const AggregatedSession& session : example_sessions) {
      std::cerr << "  " << dictionary.Text(session.queries[0]) << "\n";
    }
  }
  std::cerr << "enter queries (empty line = new session, EOF = quit):\n";

  std::vector<QueryId> context;
  // Batch mode buffers whole contexts (engine spans borrow their storage).
  std::vector<std::vector<QueryId>> buffered;
  uint64_t seen_version = engine.current_version();

  const auto flush_batch = [&] {
    if (buffered.empty()) return;
    const std::vector<Recommendation> results =
        engine.RecommendMany(buffered, 5);
    for (size_t i = 0; i < results.size(); ++i) {
      PrintRecommendation(dictionary, buffered[i], results[i]);
    }
    buffered.clear();
  };
  const auto report_version = [&] {
    const uint64_t now = engine.current_version();
    if (now != seen_version) {
      std::cout << "-- model v" << now << " is live";
      if (retrainer != nullptr) {
        std::cout << " (corpus " << retrainer->corpus_size() << " sessions)";
      }
      std::cout << " --\n";
      seen_version = now;
    }
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    report_version();
    const std::string normalized = QueryDictionary::Normalize(line);
    if (normalized.empty()) {
      flush_batch();
      if (cli.tail && retrainer != nullptr && context.size() >= 2) {
        // One completed session enters the stream; the background retrainer
        // will fold it into the next snapshot.
        retrainer->AppendSessions({AggregatedSession{context, 1}});
      }
      context.clear();
      std::cout << "-- new session --\n";
      continue;
    }
    std::optional<QueryId> id = dictionary.Lookup(normalized);
    if (!id.has_value()) {
      if (cli.tail) {
        id = dictionary.Intern(normalized);  // joins the vocabulary live
      } else {
        std::cout << "(query \"" << normalized
                  << "\" is outside the trained vocabulary; session "
                     "continues)\n";
        continue;
      }
    }
    context.push_back(*id);
    if (cli.batch > 1) {
      buffered.push_back(context);
      if (buffered.size() >= cli.batch) flush_batch();
      continue;
    }
    const Recommendation rec = engine.Recommend(context, 5);
    PrintRecommendation(dictionary, context, rec);
  }
  flush_batch();
  if (cli.tail && retrainer != nullptr) {
    if (context.size() >= 2) {
      retrainer->AppendSessions({AggregatedSession{context, 1}});
    }
    retrainer->Stop();
  }
  return 0;
}
