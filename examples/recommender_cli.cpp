// Interactive query recommender driving the concurrent serving subsystem:
// trains an MVMM snapshot on a synthetic corpus (or cold-boots one from a
// persisted blob or sharded-fleet manifest), publishes it to the serving
// engine, then reads query sessions from stdin and prints top-5
// recommendations after every query — the paper's "online query
// recommendation phase", served the way production would serve it.
//
//   $ ./build/example_recommender_cli                 # interactive
//   $ printf "first query\nsecond query\n" | ./build/example_recommender_cli
//
// Flags:
//   --threads N   worker lanes for batched serving (default 1)
//   --batch N     buffer N contexts and answer them via one RecommendMany
//                 (default 1 = answer each query immediately)
//   --shards N    partition the query-id space across N engine shards
//                 (serve/sharded_engine); answers are bit-identical to
//                 --shards 1, only the serving topology changes
//   --tail        treat stdin as a live log tail: every completed session
//                 (terminated by an empty line) is appended to the streaming
//                 retrainer(s), which rebuild and hot-swap in the
//                 background; unseen queries join the vocabulary live.
//                 With --shards, each session reaches exactly the shards
//                 whose counts it affects and shards rebuild independently
//   --compact     publish compact serving snapshots (CSR layout, top-16
//                 nexts, 16-bit quantized counts) instead of the full model
//   --save-snapshot PATH
//                 persist every published rebuild (atomic tmp+rename):
//                 per-shard blobs at PATH.shard<k> — one at the default
//                 --shards 1 — indexed by a SnapshotManifest at PATH,
//                 with the dictionary sidecar at PATH.dict. PATH is
//                 always a manifest, whatever the shard count
//   --load-snapshot PATH
//                 skip training entirely: cold-boot from the artifact at
//                 PATH — a single blob boots one engine, a manifest boots
//                 a sharded fleet (shard count comes from the manifest).
//                 Flags the cold boot would ignore (--tail,
//                 --save-snapshot, --compact, --shards) are rejected with
//                 an explicit error, never silently dropped — see
//                 serve/cli_config.h for the validation contract.
//   --deadline-us N
//                 per-request latency budget: requests that cannot meet it
//                 are shed with an explicit message instead of blocking
//                 past it (serve/admission_queue). Default 0 = unbounded
//   --lane interactive|bulk
//                 admission priority lane for served requests (default
//                 interactive; bulk batches yield the engine to
//                 interactive traffic under load)
//   --serve-port P
//                 network serving mode (requires --load-snapshot): instead
//                 of answering stdin, expose the cold-booted artifact over
//                 TCP — one ShardServer per manifest shard on ports
//                 P..P+N-1 (a single blob serves one shard on P). Runs
//                 until stdin reaches EOF. Deadlines and lanes arrive
//                 per-request in the wire frame header
//   --connect HOST:P
//                 network client mode (requires --load-snapshot for the
//                 dictionary + shard count): the stdin loop is served by a
//                 RouterClient fanning requests across the fleet started
//                 with --serve-port at HOST, ports P..P+N-1. Answers are
//                 bit-identical to serving the same artifact in-process
//   --feedback-log DIR
//                 closed-loop serving: every served answer is appended to
//                 the bounded crash-safe feedback log in DIR as an
//                 impression (context, served top-N, per-item sampling
//                 propensity); in single-query mode, typing a query that
//                 was on the previous answer's list records a click
//                 against that impression. With --tail, each completed
//                 session consumes the log (ConsumeFeedback): clicked
//                 impressions — not raw stdin sessions — become the
//                 retrainers' training stream, closing the
//                 serve -> log -> retrain -> publish loop in one process.
//                 Works with --serve-port too (the fleet's servers share
//                 the log)
//   --explore POLICY:PARAM
//                 exploration-aware reranking (requires --feedback-log):
//                 epsilon:E, softmax:LAMBDA, bag:B, or none. Perturbs
//                 which item is served at slot 1 (seeded, deterministic
//                 per logged record) so the feedback log covers more than
//                 the greedy arm; propensities land in the log for
//                 unbiased (IPS) evaluation. "none" and epsilon:0 are
//                 bit-identical to not passing --explore at all
//
// An empty line resets the session context. Because the corpus is
// synthetic, useful inputs are queries the trainer has seen; the program
// prints a few popular example queries at startup for copy/paste.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/serialization.h"
#include "core/snapshot_io.h"
#include "log/data_reduction.h"
#include "log/session_aggregator.h"
#include "log/session_segmenter.h"
#include "net/router_client.h"
#include "net/shard_server.h"
#include "net/tcp_transport.h"
#include "serve/cli_config.h"
#include "serve/explorer.h"
#include "serve/feedback.h"
#include "serve/recommender_engine.h"
#include "serve/retrainer.h"
#include "serve/sharded_engine.h"
#include "synth/log_synthesizer.h"
#include "util/timer.h"

namespace {

using namespace sqp;

void PrintUsage() {
  std::cerr << "usage: recommender_cli [--threads N] [--batch N] "
               "[--shards N] [--tail]\n"
               "                       [--compact] [--save-snapshot PATH | "
               "--load-snapshot PATH]\n"
               "                       [--deadline-us N] "
               "[--lane interactive|bulk]\n"
               "                       [--serve-port P | --connect HOST:P]\n"
               "                       [--feedback-log DIR "
               "[--explore POLICY:PARAM]]\n"
               "(--load-snapshot cold-boots a read-only replica from a blob "
               "or manifest and\n"
               " rejects flags it would ignore: --tail, --save-snapshot, "
               "--compact, --shards;\n"
               " --serve-port exposes the artifact over TCP, --connect "
               "serves stdin through a\n"
               " router fanning across such a fleet — both require "
               "--load-snapshot)\n";
}

/// Exits with a clear message instead of aborting on a Status failure —
/// a missing .dict sidecar or corrupt blob is an operator error, not a
/// program bug.
void ExitIfError(const Status& status, const std::string& what) {
  if (status.ok()) return;
  std::cerr << "error: " << what << ": " << status.ToString() << "\n";
  std::exit(1);
}

/// The closed-loop state both serving modes share: the feedback log, the
/// optional explorer, and the hook every served request carries. Null
/// when --feedback-log was not given.
struct ClosedLoop {
  std::unique_ptr<FeedbackLog> log;
  std::unique_ptr<Explorer> explorer;
  FeedbackHook hook;
};

std::unique_ptr<ClosedLoop> OpenClosedLoop(const RecommenderCliConfig& cli) {
  if (cli.feedback_log.empty()) return nullptr;
  auto loop = std::make_unique<ClosedLoop>();
  Result<std::unique_ptr<FeedbackLog>> opened =
      FeedbackLog::Open({.dir = cli.feedback_log});
  ExitIfError(opened.status(),
              "opening the feedback log at " + cli.feedback_log);
  loop->log = std::move(opened.value());
  if (!cli.explore.empty()) {
    const Result<ExplorerOptions> spec = ParseExplorerSpec(cli.explore);
    ExitIfError(spec.status(), "parsing --explore");
    loop->explorer = std::make_unique<Explorer>(*spec);
  }
  loop->hook.log = loop->log.get();
  loop->hook.explorer = loop->explorer.get();
  std::cerr << "feedback log at " << cli.feedback_log
            << (loop->explorer != nullptr && loop->explorer->enabled()
                    ? ", exploring with " + cli.explore
                    : std::string(", greedy serving (no exploration)"))
            << "\n";
  return loop;
}

void PrintFeedbackSummary(const ClosedLoop* loop) {
  if (loop == nullptr) return;
  const FeedbackLogStats stats = loop->log->stats();
  std::cerr << "feedback: " << stats.impressions_appended
            << " impressions, " << stats.clicks_appended
            << " clicks logged (" << stats.dropped_appends << " dropped, "
            << stats.segments_sealed << " segments sealed)\n";
}

void PrintRecommendation(const QueryDictionary& dictionary,
                         const std::vector<QueryId>& context,
                         const Recommendation& rec) {
  std::cout << "after \"" << dictionary.Text(context.back()) << "\": ";
  if (!rec.covered) {
    std::cout << "(no recommendation for this context)\n";
    return;
  }
  std::cout << "recommendations (used last " << rec.matched_length
            << " queries):\n";
  for (size_t i = 0; i < rec.queries.size(); ++i) {
    std::cout << "  " << (i + 1) << ". "
              << dictionary.Text(rec.queries[i].query) << "  ["
              << rec.queries[i].score << "]\n";
  }
}

/// --serve-port: stand the artifact up as a TCP fleet (one ShardServer
/// per shard, consecutive ports) and block until stdin closes — the
/// process-per-shard topology, runnable as N processes with one shard
/// each or, as here, one process hosting the whole fleet.
int RunServeMode(const RecommenderCliConfig& cli) {
  const Result<SnapshotFileKind> kind = SnapshotIo::Probe(cli.load_snapshot);
  ExitIfError(kind.status(), "classifying " + cli.load_snapshot);

  // One shared closed-loop hook for the whole fleet: every shard server
  // logs into the same directory with fleet-unique record ids.
  const std::unique_ptr<ClosedLoop> loop = OpenClosedLoop(cli);
  std::vector<std::unique_ptr<net::ShardServer>> servers;
  std::unique_ptr<RecommenderEngine> blob_engine;  // single-blob mode
  if (*kind == SnapshotFileKind::kManifest) {
    const auto manifest = SnapshotIo::LoadManifest(cli.load_snapshot);
    ExitIfError(manifest.status(), "reading the manifest");
    for (uint32_t s = 0; s < manifest->num_shards(); ++s) {
      net::ShardServerOptions options;
      options.host = "0.0.0.0";
      options.port = static_cast<uint16_t>(cli.serve_port + s);
      options.engine.num_threads = cli.threads;
      options.feedback = loop != nullptr ? &loop->hook : nullptr;
      auto server = std::make_unique<net::ShardServer>(options);
      ExitIfError(server->StartFromManifest(cli.load_snapshot, s),
                  "starting shard " + std::to_string(s));
      servers.push_back(std::move(server));
    }
  } else {
    blob_engine = std::make_unique<RecommenderEngine>(
        EngineOptions{.num_threads = cli.threads});
    ExitIfError(blob_engine->LoadAndPublish(cli.load_snapshot),
                "cold-booting from " + cli.load_snapshot);
    net::ShardServerOptions options;
    options.host = "0.0.0.0";
    options.port = cli.serve_port;
    options.engine.num_threads = cli.threads;
    options.feedback = loop != nullptr ? &loop->hook : nullptr;
    auto server = std::make_unique<net::ShardServer>(options);
    ExitIfError(
        server->StartWithEngine(blob_engine.get(),
                                blob_engine->current_version()),
        "starting the server");
    servers.push_back(std::move(server));
  }
  for (const auto& server : servers) {
    std::cerr << "serving shard " << server->shard_index() << "/"
              << server->fleet_num_shards() << " (fleet v"
              << server->fleet_version() << ") on port " << server->port()
              << "\n";
  }
  std::cerr << "fleet is up; EOF on stdin shuts it down\n";
  std::string line;
  while (std::getline(std::cin, line)) {
  }
  for (const auto& server : servers) {
    const net::ShardServerStats stats = server->stats();
    std::cerr << "shard " << server->shard_index() << ": "
              << stats.frames_served << " frames served, "
              << stats.connections_accepted << " connections ("
              << stats.connections_dropped << " dropped)\n";
    server->Stop();
  }
  PrintFeedbackSummary(loop.get());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  const Result<RecommenderCliConfig> parsed = ParseRecommenderCliArgs(args);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.status().message() << "\n";
    PrintUsage();
    return 2;
  }
  RecommenderCliConfig cli = *parsed;
  if (cli.serve_port != 0) return RunServeMode(cli);

  // Closed-loop state (--feedback-log): null in plain serving; validation
  // already rejected the flags in --connect mode.
  const std::unique_ptr<ClosedLoop> loop = OpenClosedLoop(cli);

  QueryDictionary dictionary;
  // All local serving goes through one ShardedEngine; --shards 1
  // degenerates to the single-engine path (one shard, identical answers).
  // In --connect mode the engine stays null and a RouterClient speaks to
  // the remote fleet instead.
  std::unique_ptr<ShardedEngine> engine;
  std::unique_ptr<net::RouterClient> router;  // --connect mode only
  std::unique_ptr<ShardedRetrainerSet> retrainers;  // training mode only
  std::vector<AggregatedSession> example_sessions;

  if (!cli.connect_host.empty()) {
    // Network client: the artifact supplies the dictionary and the fleet
    // shape; the answers come over TCP from a --serve-port fleet.
    ExitIfError(LoadDictionary(cli.load_snapshot + ".dict", &dictionary),
                "loading the dictionary sidecar " + cli.load_snapshot +
                    ".dict");
    const Result<SnapshotFileKind> kind = SnapshotIo::Probe(cli.load_snapshot);
    ExitIfError(kind.status(), "classifying " + cli.load_snapshot);
    uint32_t fleet_shards = 1;
    if (*kind == SnapshotFileKind::kManifest) {
      const auto manifest = SnapshotIo::LoadManifest(cli.load_snapshot);
      ExitIfError(manifest.status(), "reading the manifest");
      fleet_shards = manifest->num_shards();
    }
    std::vector<uint16_t> ports;
    for (uint32_t s = 0; s < fleet_shards; ++s) {
      ports.push_back(static_cast<uint16_t>(cli.connect_port + s));
    }
    router = std::make_unique<net::RouterClient>(
        fleet_shards, net::TcpTransportFactory(cli.connect_host, ports));
    std::cerr << "routing to " << fleet_shards << " shard server(s) at "
              << cli.connect_host << ":" << cli.connect_port << "-"
              << (cli.connect_port + fleet_shards - 1) << " ("
              << dictionary.size() << " dictionary queries)\n";
  } else if (!cli.load_snapshot.empty()) {
    // Cold boot: the model comes straight off the persisted artifact, no
    // synthesis, no training. A manifest boots a fleet sized by the file.
    WallTimer timer;
    ExitIfError(LoadDictionary(cli.load_snapshot + ".dict", &dictionary),
                "loading the dictionary sidecar " + cli.load_snapshot +
                    ".dict (persisted next to the snapshot by "
                    "--save-snapshot)");
    const Result<SnapshotFileKind> kind = SnapshotIo::Probe(cli.load_snapshot);
    ExitIfError(kind.status(), "classifying " + cli.load_snapshot);
    ShardedEngineOptions engine_options;
    engine_options.num_threads = cli.threads;
    if (*kind == SnapshotFileKind::kManifest) {
      Result<std::unique_ptr<ShardedEngine>> booted =
          ShardedEngine::BootFromManifest(cli.load_snapshot, engine_options);
      ExitIfError(booted.status(),
                  "cold-booting the fleet from " + cli.load_snapshot);
      engine = std::move(booted.value());
    } else {
      engine_options.num_shards = 1;
      engine = std::make_unique<ShardedEngine>(engine_options);
      ExitIfError(engine->shard(0)->LoadAndPublish(cli.load_snapshot),
                  "cold-booting from " + cli.load_snapshot);
    }
    const ShardedStats stats = engine->stats();
    std::cerr << "cold-booted " << engine->num_shards() << " shard(s) at v"
              << stats.max_version << " from " << cli.load_snapshot
              << " in " << timer.ElapsedMillis() << " ms ("
              << dictionary.size() << " dictionary queries)\n";
  } else {
    std::cerr << "training MVMM on a synthetic corpus..." << std::flush;
    Vocabulary vocabulary(
        VocabularyConfig{.num_terms = 1500, .synonym_fraction = 0.3}, 21);
    TopicModel topics(&vocabulary, TopicModelConfig{}, 22);
    SynthesizerConfig config;
    config.num_sessions = 30000;
    config.num_machines = 1000;
    LogSynthesizer synthesizer(&topics, config);
    const SynthCorpus corpus = synthesizer.Synthesize(23, nullptr);

    SessionSegmenter segmenter;
    std::vector<Session> segmented;
    SQP_CHECK_OK(segmenter.Segment(corpus.records, &dictionary, &segmented));
    SessionAggregator aggregator;
    aggregator.Add(segmented);
    ReductionOptions reduction;
    reduction.min_frequency_exclusive = 1;
    std::vector<AggregatedSession> sessions =
        ReduceSessions(aggregator.Finish(), reduction, nullptr);
    example_sessions.assign(sessions.begin(),
                            sessions.begin() +
                                std::min<size_t>(5, sessions.size()));

    // The serving stack: sharded engine + per-shard streaming retrainers
    // owning the partitioned corpus.
    engine = std::make_unique<ShardedEngine>(ShardedEngineOptions{
        .num_shards = cli.shards, .num_threads = cli.threads});
    RetrainerOptions retrain_options;
    retrain_options.model.default_max_depth = 5;
    retrain_options.vocabulary_size = 0;  // grow with live-interned queries
    retrain_options.poll_interval = std::chrono::milliseconds(50);
    retrain_options.publish_compact = cli.compact;
    retrain_options.persist_path = cli.save_snapshot;
    retrainers = std::make_unique<ShardedRetrainerSet>(engine.get(),
                                                       retrain_options);
    // With --save-snapshot, Bootstrap also persists every shard blob and
    // the manifest indexing them; each later background rebuild re-pins
    // the manifest automatically, so the on-disk fleet stays bootable.
    ExitIfError(retrainers->Bootstrap(std::move(sessions)), "training");
    if (!cli.save_snapshot.empty()) {
      // The dictionary rides along so a cold-booting replica can map ids
      // back to query strings.
      ExitIfError(SaveDictionary(dictionary, cli.save_snapshot + ".dict"),
                  "persisting the dictionary sidecar");
      std::cerr << " wrote manifest + " << engine->num_shards()
                << " shard blob(s) to " << cli.save_snapshot
                << " (+ .dict);" << std::flush;
    }
    if (cli.tail) retrainers->StartAll();

    size_t corpus_size = 0;
    for (size_t s = 0; s < retrainers->num_shards(); ++s) {
      corpus_size += retrainers->shard_retrainer(s)->published_version() > 0
                         ? retrainers->shard_retrainer(s)->corpus_size()
                         : 0;
    }
    std::cerr << " done (" << corpus_size
              << " sessions across shard corpora, " << dictionary.size()
              << " unique queries)\n";
  }

  if (router != nullptr) {
    std::cerr << "serving over TCP through " << router->num_shards()
              << " shard connection(s), batch " << cli.batch << "\n";
  } else {
    std::cerr << "serving with " << engine->num_shards() << " shard(s), "
              << engine->num_threads() << " lane(s), batch " << cli.batch
              << (cli.compact ? ", compact snapshots" : "")
              << (!cli.load_snapshot.empty() ? ", mmap-booted snapshot(s)"
                                             : "")
              << (cli.tail ? ", live retraining on session tails" : "")
              << "\n";
  }
  if (!example_sessions.empty()) {
    std::cerr << "example queries you can try:\n";
    for (const AggregatedSession& session : example_sessions) {
      std::cerr << "  " << dictionary.Text(session.queries[0]) << "\n";
    }
  }
  std::cerr << "enter queries (empty line = new session, EOF = quit):\n";

  std::vector<QueryId> context;
  // Batch mode buffers whole contexts (engine spans borrow their storage).
  std::vector<std::vector<QueryId>> buffered;

  // Click attribution (single-query mode only): the previous answer's
  // impression id and served ids. Typing a query that was on that list is
  // a click on its slot.
  uint64_t last_impression = 0;
  std::vector<QueryId> last_served;

  // The serving seam: identical loop whether answers come from the
  // in-process fleet or over the wire (they are bit-identical anyway —
  // that is the network tier's contract).
  const auto serve_batch = [&](std::span<const ContextRef> refs,
                               const ServeOptions& options) {
    return router != nullptr ? router->RecommendMany(refs, 5, options)
                             : engine->RecommendMany(refs, 5, options);
  };
  const auto serve_single = [&](ContextRef ref, const ServeOptions& options) {
    return router != nullptr ? router->Recommend(ref, 5, options)
                             : engine->Recommend(ref, 5, options);
  };
  const auto live_version = [&] {
    return router != nullptr ? router->observed_fleet_version()
                             : engine->stats().max_version;
  };
  uint64_t seen_version = live_version();

  // Every request carries the CLI's QoS choice: a fresh deadline per call
  // (Deadline::After burns from the moment of the call, queue wait
  // included) and the chosen lane. deadline_us = 0 keeps the unbounded
  // legacy behavior.
  const auto serve_options = [&] {
    ServeOptions options;
    if (cli.deadline_us > 0) {
      options.deadline =
          Deadline::After(std::chrono::microseconds(cli.deadline_us));
    }
    options.lane = cli.lane;
    options.feedback = loop != nullptr ? &loop->hook : nullptr;
    return options;
  };
  const auto print_shed = [](StatusCode code) {
    switch (code) {
      case StatusCode::kUnavailable:
        std::cout << "(shard unavailable: no published snapshot or "
                     "unreachable server)\n";
        break;
      case StatusCode::kDataLoss:
        std::cout << "(wire corruption: response discarded)\n";
        break;
      default:
        std::cout << "(request shed: deadline exceeded)\n";
        break;
    }
  };

  const auto flush_batch = [&] {
    if (buffered.empty()) return;
    std::vector<ContextRef> refs;
    refs.reserve(buffered.size());
    for (const std::vector<QueryId>& c : buffered) {
      refs.emplace_back(c.data(), c.size());
    }
    const BatchResult batch =
        serve_batch(std::span<const ContextRef>(refs), serve_options());
    for (size_t i = 0; i < batch.results.size(); ++i) {
      if (batch.statuses[i] == StatusCode::kOk) {
        PrintRecommendation(dictionary, buffered[i], batch.results[i]);
      } else {
        std::cout << "after \"" << dictionary.Text(buffered[i].back())
                  << "\": ";
        print_shed(batch.statuses[i]);
      }
    }
    buffered.clear();
  };
  const auto report_version = [&] {
    const uint64_t now_live = live_version();
    if (now_live != seen_version) {
      std::cout << "-- model v" << now_live << " is live";
      if (engine != nullptr && engine->num_shards() > 1) {
        std::cout << " (oldest shard v" << engine->stats().min_version
                  << ")";
      }
      std::cout << " --\n";
      seen_version = now_live;
    }
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    report_version();
    const std::string normalized = QueryDictionary::Normalize(line);
    if (normalized.empty()) {
      flush_batch();
      if (cli.tail && retrainers != nullptr) {
        if (loop != nullptr) {
          // Closed loop: the training stream is the feedback log, not raw
          // stdin — clicked impressions (with their contexts) become the
          // appended sessions, and the watermark makes re-consumes no-ops.
          (void)loop->log->Flush();
          const Result<size_t> consumed =
              retrainers->ConsumeFeedback(cli.feedback_log);
          if (!consumed.ok()) {
            std::cerr << "feedback consume failed: "
                      << consumed.status().ToString() << "\n";
          } else if (*consumed > 0) {
            std::cout << "-- " << *consumed
                      << " clicked impression(s) entered the retrain "
                         "stream --\n";
          }
        } else if (context.size() >= 2) {
          // One completed session enters the stream; the background
          // retrainers of the owning shards fold it into their next
          // snapshots.
          retrainers->AppendSessions({AggregatedSession{context, 1}});
        }
      }
      context.clear();
      last_impression = 0;
      last_served.clear();
      std::cout << "-- new session --\n";
      continue;
    }
    std::optional<QueryId> id = dictionary.Lookup(normalized);
    if (!id.has_value()) {
      if (cli.tail) {
        id = dictionary.Intern(normalized);  // joins the vocabulary live
      } else {
        std::cout << "(query \"" << normalized
                  << "\" is outside the trained vocabulary; session "
                     "continues)\n";
        continue;
      }
    }
    if (loop != nullptr && last_impression != 0) {
      // The user typed their next query: if it was on the previous
      // answer's list, that is a click on its slot.
      for (size_t pos = 0; pos < last_served.size(); ++pos) {
        if (last_served[pos] == *id) {
          (void)loop->log->RecordClick(last_impression,
                                       static_cast<uint32_t>(pos));
          std::cout << "(click on slot " << (pos + 1) << " recorded)\n";
          break;
        }
      }
      last_impression = 0;
      last_served.clear();
    }
    context.push_back(*id);
    if (cli.batch > 1) {
      buffered.push_back(context);
      if (buffered.size() >= cli.batch) flush_batch();
      continue;
    }
    const ServeResult served =
        serve_single(ContextRef(context.data(), context.size()),
                     serve_options());
    if (served.status == StatusCode::kOk) {
      PrintRecommendation(dictionary, context, served.recommendation);
      if (loop != nullptr && served.feedback_record_id != 0) {
        last_impression = served.feedback_record_id;
        last_served.clear();
        for (const ScoredQuery& sq : served.recommendation.queries) {
          last_served.push_back(sq.query);
        }
      }
    } else {
      std::cout << "after \"" << dictionary.Text(context.back()) << "\": ";
      print_shed(served.status);
    }
  }
  flush_batch();
  if (cli.tail && retrainers != nullptr) {
    if (loop != nullptr) {
      (void)loop->log->Flush();
      const Result<size_t> consumed =
          retrainers->ConsumeFeedback(cli.feedback_log);
      if (!consumed.ok()) {
        std::cerr << "feedback consume failed: "
                  << consumed.status().ToString() << "\n";
      }
    } else if (context.size() >= 2) {
      retrainers->AppendSessions({AggregatedSession{context, 1}});
    }
    retrainers->StopAll();
  }
  PrintFeedbackSummary(loop.get());
  return 0;
}
